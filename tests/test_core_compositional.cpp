//===- tests/test_core_compositional.cpp - Section 8: summaries + UFs -------------===//
//
// Higher-order *compositional* test generation: calls to summarizable
// MiniLang functions become `sum:<name>` uninterpreted applications, their
// intraprocedural paths are recorded as summary disjuncts, and the
// validity solver grounds the applications by instantiating disjuncts —
// the combination Section 8 describes as orthogonal and simultaneous.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "dse/SymbolicExecutor.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

class CompositionalTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render();
    Prog = std::move(*Parsed);
    Natives.registerDefaultHashes();
  }

  PathResult exec(std::string_view Entry, std::vector<int64_t> Cells) {
    ExecOptions Options;
    Options.Policy = ConcretizationPolicy::HigherOrder;
    Options.SummarizeCalls = true;
    SymbolicExecutor Exec(Prog, Natives, Arena, Options);
    TestInput Input;
    Input.Cells = std::move(Cells);
    return Exec.execute(Entry, Input, &Samples, &Summaries);
  }

  lang::Program Prog;
  NativeRegistry Natives;
  smt::TermArena Arena;
  smt::SampleTable Samples;
  SummaryTable Summaries;
};

const char *StepProgram = R"(
fun step(v: int) -> int {
  if (v > 0) {
    return 2 * v;
  }
  return 0;
}
fun main(x: int) -> int {
  if (step(x) == 14) {
    error("step inverted");
  }
  return 0;
}
)";

TEST_F(CompositionalTest, CallBecomesSummaryApplication) {
  compile(StepProgram);
  PathResult PR = exec("main", {5});
  // The caller's constraint mentions sum:step, not the inlined 2*x.
  ASSERT_GE(PR.PC.size(), 2u);
  // Entry 0: the instantiated precondition (check-style, negatable).
  EXPECT_TRUE(PR.PC.Entries[0].IsCheck);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint), "(> x 0)");
  // Entry 1: the branch constraint over the opaque application.
  EXPECT_EQ(Arena.toString(PR.PC.Entries[1].Constraint),
            "(distinct (sum:step x) 14)");
}

TEST_F(CompositionalTest, DisjunctIsRecordedOverFormals) {
  compile(StepProgram);
  exec("main", {5});
  smt::FuncId SymId = Arena.getOrCreateFunc("sum:step", 1);
  ASSERT_TRUE(Summaries.isSummary(SymId));
  const auto &Disjuncts = Summaries.disjunctsFor(SymId);
  ASSERT_EQ(Disjuncts.size(), 1u);
  EXPECT_EQ(Arena.toString(Disjuncts[0].Pre), "(> sum:step#v 0)");
  EXPECT_EQ(Arena.toString(Disjuncts[0].Out), "(* 2 sum:step#v)");
}

TEST_F(CompositionalTest, BothPathsAccumulateDisjuncts) {
  compile(StepProgram);
  exec("main", {5});
  exec("main", {-3});
  exec("main", {7}); // Duplicate path: disjunct deduplicates.
  smt::FuncId SymId = Arena.getOrCreateFunc("sum:step", 1);
  EXPECT_EQ(Summaries.disjunctsFor(SymId).size(), 2u);
  EXPECT_EQ(Summaries.size(), 2u);
}

TEST_F(CompositionalTest, ConcreteCallsAreNotSummarized) {
  compile(StepProgram);
  // A call with concrete arguments evaluates concretely — no disjunct.
  compile("fun step(v: int) -> int { return v + 1; }\n"
          "fun main(x: int) -> int { return step(3) + x; }");
  exec("main", {5});
  EXPECT_EQ(Summaries.size(), 0u);
}

TEST_F(CompositionalTest, SearchSolvesThroughTheSummary) {
  compile(StepProgram);
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.SummarizeCalls = true;
  Options.MaxTests = 16;
  TestInput Init;
  Init.Cells = {5};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "main", Options);
  SearchResult R = Search.run();
  ASSERT_TRUE(R.foundErrorSite(0))
      << "sum:step(x) = 14 must be solved by instantiating the disjunct "
         "x > 0 ∧ sum:step(x) = 2x, giving x = 7";
  bool SawSeven = false;
  for (const BugRecord &Bug : R.Bugs)
    SawSeven |= Bug.Input.Cells[0] == 7;
  EXPECT_TRUE(SawSeven);
  EXPECT_EQ(R.Divergences, 0u);
  EXPECT_GE(Search.summaries().size(), 1u);
}

TEST_F(CompositionalTest, NegatingThePreExploresCalleePaths) {
  // The error is behind the callee's *other* path: the search must negate
  // the instantiated precondition to grow the summary first.
  compile(R"(
fun classify(v: int) -> int {
  if (v > 100) {
    return v - 100;
  }
  return v + 1;
}
fun main(x: int) -> int {
  if (classify(x) == 5) {
    if (x > 100) {
      error("large-side preimage");
    }
    return 1;
  }
  return 0;
}
)");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.SummarizeCalls = true;
  Options.MaxTests = 24;
  Options.SkipCoveredTargets = false;
  TestInput Init;
  Init.Cells = {3};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "main", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundErrorSite(0)) << "needs x = 105 via the v > 100 "
                                      "disjunct";
}

TEST_F(CompositionalTest, SummariesComposeWithUnknownFunctions) {
  // Section 8's actual claim: summary UFs and imprecision UFs coexist.
  // wrap() calls the unknown hash inside a summarizable function.
  compile(R"(
extern hash(int) -> int;
fun wrap(v: int) -> int {
  return hash(v) + 1;
}
fun main(x: int, y: int) -> int {
  if (x == wrap(y)) {
    error("through both layers");
  }
  return 0;
}
)");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.SummarizeCalls = true;
  Options.MaxTests = 16;
  TestInput Init;
  Init.Cells = {3, 42};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "main", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundErrorSite(0))
      << "x = sum:wrap(y) grounds through the disjunct out = hash(v)+1, "
         "whose hash(y) application grounds through the sample";
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_F(CompositionalTest, NestedSummariesGroundRecursively) {
  // scale() calls clamp(); grounding sum:scale's disjunct introduces
  // sum:clamp, which must itself be grounded by its own disjunct (the
  // worklist recursion) — otherwise the solver would invent its value.
  compile(R"(
fun clamp(v: int) -> int {
  if (v < 0) { return 0; }
  if (v > 100) { return 100; }
  return v;
}
fun scale(v: int) -> int {
  return clamp(v) * 3 + 1;
}
fun main(x: int) -> int {
  if (scale(x) == 91) {
    error("x must be 30");
  }
  return 0;
}
)");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.SummarizeCalls = true;
  Options.MaxTests = 24;
  TestInput Init;
  Init.Cells = {13};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "main", Options);
  SearchResult R = Search.run();
  ASSERT_TRUE(R.foundErrorSite(0));
  bool SawThirty = false;
  for (const BugRecord &Bug : R.Bugs)
    SawThirty |= Bug.Input.Cells[0] == 30;
  EXPECT_TRUE(SawThirty) << "clamp(x)*3+1 = 91 forces x = 30";
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_F(CompositionalTest, ErrorSitesDisableSummarization) {
  compile(R"(
fun risky(v: int) -> int {
  if (v == 99) {
    error("inside callee");
  }
  return v;
}
fun main(x: int) -> int {
  return risky(x);
}
)");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.SummarizeCalls = true;
  Options.MaxTests = 8;
  TestInput Init;
  Init.Cells = {1};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "main", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundErrorSite(0))
      << "risky() is inlined (not summarizable), so the bug stays visible";
  EXPECT_EQ(Search.summaries().size(), 0u);
}

TEST_F(CompositionalTest, RecursionIsNotSummarized) {
  compile(R"(
fun rec(v: int) -> int {
  if (v <= 0) {
    return 0;
  }
  return rec(v - 1) + 1;
}
fun main(x: int) -> int {
  if (rec(x) == 3) {
    error("depth three");
  }
  return 0;
}
)");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.SummarizeCalls = true;
  Options.MaxTests = 24;
  Options.SkipCoveredTargets = false;
  TestInput Init;
  Init.Cells = {0};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "main", Options);
  SearchResult R = Search.run();
  EXPECT_EQ(Search.summaries().size(), 0u);
  EXPECT_TRUE(R.foundErrorSite(0)) << "inlined recursion still solvable";
}

} // namespace
