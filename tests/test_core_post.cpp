//===- tests/test_core_post.cpp - POST(pc) construction unit tests ----------------===//

#include "core/Post.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::smt;

namespace {

class PostTest : public ::testing::Test {
protected:
  TermArena Arena;
  SampleTable Samples;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  FuncId H = Arena.getOrCreateFunc("hash", 1);

  TermId h(TermId T) { return Arena.mkUFApp(H, {{T}}); }
};

TEST_F(PostTest, EmptyTableGivesBarePathCondition) {
  TermId Pc = Arena.mkEq(X, h(Y));
  EXPECT_EQ(buildPost(Arena, Pc, Samples), Pc);
}

TEST_F(PostTest, AntecedentListsRelevantSamples) {
  Samples.record(H, {42}, 567);
  TermId Pc = Arena.mkEq(X, h(Y));
  TermId A = buildAntecedent(Arena, Pc, Samples);
  EXPECT_EQ(Arena.toString(A), "(= 567 (hash 42))");
}

TEST_F(PostTest, IrrelevantSamplesAreOmitted) {
  FuncId Other = Arena.getOrCreateFunc("other", 1);
  Samples.record(Other, {1}, 2);
  TermId Pc = Arena.mkEq(X, h(Y));
  TermId A = buildAntecedent(Arena, Pc, Samples);
  EXPECT_EQ(Arena.toString(A), "true")
      << "samples of symbols absent from pc cannot matter";
  EXPECT_EQ(buildPost(Arena, Pc, Samples), Pc);
}

TEST_F(PostTest, PostIsImplication) {
  Samples.record(H, {42}, 567);
  TermId Pc = Arena.mkEq(X, h(Y));
  TermId Post = buildPost(Arena, Pc, Samples);
  EXPECT_EQ(Arena.toString(Post),
            "(=> (= 567 (hash 42)) (= x (hash y)))");
}

TEST_F(PostTest, MultipleSamplesConjoin) {
  Samples.record(H, {0}, 0);
  Samples.record(H, {1}, 1);
  TermId Pc = Arena.mkEq(h(X), Arena.mkAdd(h(Y), Arena.mkIntConst(1)));
  TermId A = buildAntecedent(Arena, Pc, Samples);
  EXPECT_EQ(Arena.toString(A),
            "(and (= 0 (hash 0)) (= 1 (hash 1)))");
}

TEST_F(PostTest, PaperNotationRendering) {
  Samples.record(H, {42}, 567);
  TermId Pc = Arena.mkEq(X, h(Y));
  std::string Rendered = postToString(Arena, Pc, Samples);
  EXPECT_EQ(Rendered,
            "exists x, y : (=> (= 567 (hash 42)) (= x (hash y)))");
}

} // namespace
