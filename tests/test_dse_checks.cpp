//===- tests/test_dse_checks.cpp - Injected safety-check constraints --------------===//
//
// Section 3.2's injected check constraints: bounds checks at symbolic
// array indices and nonzero-divisor checks, which let the directed search
// target value-dependent faults on already-covered paths.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "dse/SymbolicExecutor.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

class CheckInjectionTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render();
    Prog = std::move(*Parsed);
  }

  PathResult exec(std::vector<int64_t> Cells, bool InjectChecks = true) {
    ExecOptions Options;
    Options.Policy = ConcretizationPolicy::Unsound;
    Options.InjectChecks = InjectChecks;
    SymbolicExecutor Exec(Prog, Natives, Arena, Options);
    TestInput Input;
    Input.Cells = std::move(Cells);
    return Exec.execute(Prog.Functions.front()->Name, Input);
  }

  lang::Program Prog;
  NativeRegistry Natives;
  smt::TermArena Arena;
};

TEST_F(CheckInjectionTest, BoundsCheckEntryIsEmitted) {
  compile("fun f(a: int[4], i: int) -> int { return a[i]; }");
  PathResult PR = exec({1, 2, 3, 4, 2});
  ASSERT_GE(PR.PC.size(), 1u);
  EXPECT_TRUE(PR.PC.Entries[0].IsCheck);
  EXPECT_FALSE(PR.PC.Entries[0].IsConcretization);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(and (>= i 0) (< i 4))");
}

TEST_F(CheckInjectionTest, ConcreteIndexNeedsNoCheck) {
  compile("fun f(a: int[4]) -> int { return a[2]; }");
  PathResult PR = exec({1, 2, 3, 4});
  EXPECT_TRUE(PR.PC.empty());
}

TEST_F(CheckInjectionTest, DivisorCheckEntryIsEmitted) {
  compile("fun f(x: int) -> int { return 100 / x; }");
  PathResult PR = exec({5});
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_TRUE(PR.PC.Entries[0].IsCheck);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(distinct x 0)");
}

TEST_F(CheckInjectionTest, InjectionCanBeDisabled) {
  compile("fun f(a: int[4], i: int) -> int { return a[i] / i; }");
  PathResult PR = exec({1, 2, 3, 4, 2}, /*InjectChecks=*/false);
  EXPECT_TRUE(PR.PC.empty());
}

TEST_F(CheckInjectionTest, ChecksAreNegatable) {
  compile("fun f(a: int[4], i: int) -> int { return a[i]; }");
  PathResult PR = exec({1, 2, 3, 4, 2});
  auto Positions = PR.PC.negatablePositions();
  ASSERT_EQ(Positions.size(), 1u);
  // ¬(0 <= i < 4) = i < 0 ∨ i >= 4.
  EXPECT_EQ(Arena.toString(PR.PC.alternate(Arena, Positions[0])),
            "(or (< i 0) (>= i 4))");
}

TEST_F(CheckInjectionTest, ConcretelyFaultingRunStillFaults) {
  compile("fun f(a: int[4], i: int) -> int { return a[i]; }");
  PathResult PR = exec({1, 2, 3, 4, 9});
  EXPECT_EQ(PR.Run.Status, RunStatus::OutOfBounds);
  EXPECT_TRUE(PR.PC.empty()) << "no check entry on the faulting run";
}

TEST_F(CheckInjectionTest, SearchFindsValueDependentFaults) {
  compile("fun f(a: int[4], i: int, v: int) -> int {\n"
          "  if (i >= 0) {\n"
          "    if (i * 2 < 10) {\n"
          "      a[i] = v;\n"
          "      return a[i] / v;\n"
          "    }\n"
          "  }\n"
          "  return -1;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxTests = 24;
  Options.SkipCoveredTargets = false;
  TestInput Init;
  Init.Cells = {0, 0, 0, 0, 2, 7};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "f", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundStatus(RunStatus::OutOfBounds))
      << "i = 4 passes both guards but overflows the buffer";
  EXPECT_TRUE(R.foundStatus(RunStatus::DivByZero)) << "v = 0 divides";
  EXPECT_EQ(R.Divergences, 0u)
      << "check-derived tests replay their prefix and fault as predicted";
}

TEST_F(CheckInjectionTest, HigherOrderPolicyAlsoInjectsChecks) {
  compile("extern hash(int) -> int;\n"
          "fun f(a: int[4], i: int) -> int {\n"
          "  var t: int = hash(i);\n"
          "  return a[i] + t;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 16;
  Options.SkipCoveredTargets = false;
  TestInput Init;
  Init.Cells = {1, 2, 3, 4, 1};
  Options.InitialInput = Init;
  NativeRegistry HashNatives;
  HashNatives.registerDefaultHashes();
  DirectedSearch Search(Prog, HashNatives, "f", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundStatus(RunStatus::OutOfBounds));
}

} // namespace
