//===- tests/test_app_packet.cpp - CRC-gated packet parser application ------------===//

#include "app/PacketParser.h"

#include "core/Search.h"
#include "interp/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

class PacketAppTest : public ::testing::Test {
protected:
  void SetUp() override {
    App = buildPacketParser();
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(App.Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render();
    Prog = std::move(*Parsed);
    registerPacketNatives(Natives);
  }

  SearchResult search(ConcretizationPolicy Policy, unsigned MaxTests,
                      TestInput Init) {
    SearchOptions Options;
    Options.Policy = Policy;
    Options.MaxTests = MaxTests;
    Options.InitialInput = std::move(Init);
    Options.SkipCoveredTargets = false;
    DirectedSearch Search(Prog, Natives, App.Entry, Options);
    return Search.run();
  }

  PacketApp App;
  lang::Program Prog;
  NativeRegistry Natives;
};

TEST_F(PacketAppTest, ConcreteSemantics) {
  Interpreter Interp(Prog, Natives);
  EXPECT_EQ(Interp.run(App.Entry, App.garbagePacket()).ReturnValue, -1)
      << "bad magic";

  TestInput BadVersion = App.validPacket(9, {});
  BadVersion.Cells[7] = 0; // Checksum irrelevant: version fails first.
  EXPECT_EQ(Interp.run(App.Entry, BadVersion).ReturnValue, -2);

  TestInput Valid = App.validPacket(1, {1, 2});
  EXPECT_EQ(Interp.run(App.Entry, Valid).ReturnValue, 0);

  TestInput BadCrc = App.validPacket(1, {1, 2});
  BadCrc.Cells[7] += 1;
  EXPECT_EQ(Interp.run(App.Entry, BadCrc).ReturnValue, -4);

  TestInput V1Priv = App.validPacket(1, {77});
  EXPECT_EQ(Interp.run(App.Entry, V1Priv).ReturnValue, 1);

  TestInput V2Priv = App.validPacket(2, {77});
  RunResult R = Interp.run(App.Entry, V2Priv);
  EXPECT_EQ(R.Status, RunStatus::ErrorHit);
  ASSERT_TRUE(R.Error.has_value());
  EXPECT_EQ(R.Error->Site, 0u);

  TestInput Combo = App.validPacket(1, {10, 20});
  EXPECT_EQ(Interp.run(App.Entry, Combo).Status, RunStatus::ErrorHit);
}

TEST_F(PacketAppTest, HigherOrderForgesTheChecksumFromGarbage) {
  SearchResult R = search(ConcretizationPolicy::HigherOrder, 96,
                          App.garbagePacket());
  EXPECT_TRUE(R.foundErrorSite(0)) << "privileged v2 command";
  EXPECT_EQ(R.Divergences, 0u);
  EXPECT_GE(R.MultiStepRuns, 1u)
      << "each payload change invalidates the checksum; re-learning crc5 "
         "is the multi-step mechanism at work";
}

TEST_F(PacketAppTest, HigherOrderFindsBothHandlers) {
  SearchResult R = search(ConcretizationPolicy::HigherOrder, 128,
                          App.garbagePacket());
  EXPECT_TRUE(R.foundErrorSite(0));
  EXPECT_TRUE(R.foundErrorSite(1)) << "the p0=10,p1=20 combo handler";
}

TEST_F(PacketAppTest, PlainDseStallsAtTheChecksumGate) {
  for (ConcretizationPolicy Policy :
       {ConcretizationPolicy::Unsound, ConcretizationPolicy::Sound}) {
    SearchResult R = search(Policy, 96, App.garbagePacket());
    EXPECT_FALSE(R.foundErrorSite(0)) << policyName(Policy);
    EXPECT_FALSE(R.foundErrorSite(1)) << policyName(Policy);
  }
}

TEST_F(PacketAppTest, PlainDseCannotEvenMutateValidPackets) {
  // Even starting from a well-formed packet, any payload change breaks
  // the checksum, so plain DSE cannot reach the handlers it has not seen.
  for (ConcretizationPolicy Policy :
       {ConcretizationPolicy::Unsound, ConcretizationPolicy::Sound}) {
    SearchResult R = search(Policy, 64, App.validPacket(1, {1}));
    EXPECT_FALSE(R.foundErrorSite(0)) << policyName(Policy);
  }
}

TEST_F(PacketAppTest, RandomTestingIsHopeless) {
  SearchResult R = runRandomSearch(Prog, Natives, App.Entry, 512, 0,
                                   1000000, 11);
  EXPECT_FALSE(R.foundErrorSite(0));
  EXPECT_FALSE(R.foundErrorSite(1));
}

} // namespace
