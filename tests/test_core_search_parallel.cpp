//===- tests/test_core_search_parallel.cpp - Parallel search determinism ---------===//
//
// The parallel candidate-evaluation pipeline (docs/parallelism.md) is a
// scheduling optimization: for ANY --jobs value the SearchResult must be
// bit-identical to the serial search — same test sequence, bugs, coverage,
// divergences, and per-query work aggregates. These tests sweep Jobs over
// {1, 2, 4} on the Section 7 keyword lexer under all four concretization
// policies, and pin down the search-owned solver-stat aggregation
// (SolverQueryStats / ValidityQueryStats) that replaced the throwaway
// per-candidate stats.
//
//===----------------------------------------------------------------------===//

#include "app/KeywordLexer.h"
#include "app/PacketParser.h"
#include "core/Search.h"
#include "lang/Parser.h"
#include "support/Support.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

void expectSameResult(const SearchResult &A, const SearchResult &B,
                      const char *What) {
  ASSERT_EQ(A.Tests.size(), B.Tests.size()) << What;
  for (size_t I = 0; I != A.Tests.size(); ++I) {
    EXPECT_EQ(A.Tests[I].Input.Cells, B.Tests[I].Input.Cells)
        << What << " test #" << I;
    EXPECT_EQ(A.Tests[I].Status, B.Tests[I].Status) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Diverged, B.Tests[I].Diverged) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Intermediate, B.Tests[I].Intermediate)
        << What << " #" << I;
  }
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size()) << What;
  for (size_t I = 0; I != A.Bugs.size(); ++I) {
    EXPECT_EQ(A.Bugs[I].Input.Cells, B.Bugs[I].Input.Cells) << What;
    EXPECT_EQ(A.Bugs[I].Status, B.Bugs[I].Status) << What;
    EXPECT_EQ(A.Bugs[I].Site, B.Bugs[I].Site) << What;
    EXPECT_EQ(A.Bugs[I].FoundAtTest, B.Bugs[I].FoundAtTest) << What;
  }
  EXPECT_TRUE(A.Cov == B.Cov) << What << ": coverage differs";
  EXPECT_EQ(A.Divergences, B.Divergences) << What;
  EXPECT_EQ(A.SolverCalls, B.SolverCalls) << What;
  EXPECT_EQ(A.ValidityCalls, B.ValidityCalls) << What;
  EXPECT_EQ(A.MultiStepRuns, B.MultiStepRuns) << What;
  // Per-query work folds to the same totals whether a query ran inline or
  // was consumed from the speculation cache.
  EXPECT_EQ(A.SolverQueryStats.Checks, B.SolverQueryStats.Checks) << What;
  EXPECT_EQ(A.SolverQueryStats.SupportsExplored,
            B.SolverQueryStats.SupportsExplored)
      << What;
  EXPECT_EQ(A.SolverQueryStats.Decisions, B.SolverQueryStats.Decisions)
      << What;
  EXPECT_EQ(A.SolverQueryStats.Propagations, B.SolverQueryStats.Propagations)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.SupportsExplored,
            B.ValidityQueryStats.SupportsExplored)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsTried,
            B.ValidityQueryStats.GroundingsTried)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsPruned,
            B.ValidityQueryStats.GroundingsPruned)
      << What;
}

class ParallelSearchTest : public ::testing::TestWithParam<
                               std::tuple<ConcretizationPolicy, bool>> {
protected:
  void SetUp() override {
    App = buildKeywordLexer({6, 2});
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(App.Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render("lexer");
    Prog = std::move(*Parsed);
    Natives.registerDefaultHashes();
  }

  SearchResult runWithJobs(unsigned Jobs) {
    SearchOptions Options;
    Options.Policy = std::get<0>(GetParam());
    Options.MaxTests = 48;
    Options.InitialInput = App.identifierInput();
    Options.RandomLo = 32;
    Options.RandomHi = 126;
    Options.SkipCoveredTargets = false;
    Options.Order = std::get<1>(GetParam())
                        ? SearchOptions::OrderKind::DepthFirst
                        : SearchOptions::OrderKind::BreadthFirst;
    Options.Jobs = Jobs;
    DirectedSearch Search(Prog, Natives, App.Entry, Options);
    return Search.run();
  }

  LexerApp App;
  lang::Program Prog;
  NativeRegistry Natives;
};

TEST_P(ParallelSearchTest, IdenticalResultForAnyJobsValue) {
  SearchResult Serial = runWithJobs(1);
  EXPECT_EQ(Serial.CacheHits + Serial.CacheMisses, 0u)
      << "jobs=1 must not touch the query cache";
  for (unsigned Jobs : {2u, 4u}) {
    SearchResult Parallel = runWithJobs(Jobs);
    expectSameResult(Serial, Parallel,
                     (testing::PrintToString(Jobs) + " jobs").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ParallelSearchTest,
    ::testing::Combine(::testing::Values(ConcretizationPolicy::Unsound,
                                         ConcretizationPolicy::Sound,
                                         ConcretizationPolicy::SoundDelayed,
                                         ConcretizationPolicy::HigherOrder),
                       ::testing::Bool()),
    [](const auto &Info) {
      std::string Name = policyName(std::get<0>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + (std::get<1>(Info.param) ? "_dfs" : "_bfs");
    });

TEST(SearchQueryStats, ClassicAggregatesAcrossTheWholeSearch) {
  // Satellite fix: processCandidate used to construct a throwaway
  // smt::Solver per candidate, so cumulative SolverStats never survived a
  // search. The aggregate now lives in the SearchResult: one Solver check
  // per classic candidate, so Checks == SolverCalls. The packet parser is
  // used because under unsound concretization the lexer's hashed branches
  // leave no negatable linear constraints at all.
  PacketApp App = buildPacketParser();
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(App.Source, Diags);
  ASSERT_TRUE(Prog) << Diags.render("packet");
  NativeRegistry Natives;
  registerPacketNatives(Natives);

  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxTests = 24;
  Options.InitialInput = App.validPacket(1, {1, 2});
  Options.SkipCoveredTargets = false;
  DirectedSearch Search(*Prog, Natives, App.Entry, Options);
  SearchResult R = Search.run();

  EXPECT_GT(R.SolverCalls, 0u);
  EXPECT_EQ(R.SolverQueryStats.Checks, R.SolverCalls);
  EXPECT_EQ(R.ValidityQueryStats.SupportsExplored, 0u);
  EXPECT_EQ(R.ValidityQueryStats.GroundingsTried, 0u);
}

TEST(SearchQueryStats, HigherOrderAggregatesValidityWork) {
  LexerApp App = buildKeywordLexer({4, 1});
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(App.Source, Diags);
  ASSERT_TRUE(Prog) << Diags.render("lexer");
  NativeRegistry Natives;
  Natives.registerDefaultHashes();

  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 24;
  Options.InitialInput = App.identifierInput();
  Options.SkipCoveredTargets = false;
  DirectedSearch Search(*Prog, Natives, App.Entry, Options);
  SearchResult R = Search.run();

  EXPECT_GT(R.ValidityCalls, 0u);
  EXPECT_GT(R.ValidityQueryStats.SupportsExplored, 0u);
  EXPECT_GT(R.ValidityQueryStats.GroundingsTried, 0u);
  EXPECT_EQ(R.SolverQueryStats.Checks, 0u)
      << "higher-order candidates query the validity solver only";
}

} // namespace
