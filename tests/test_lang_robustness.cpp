//===- tests/test_lang_robustness.cpp - Frontend robustness fuzzing ----------------===//
//
// The lexer/parser/sema pipeline must never crash: every input — random
// bytes, truncations of valid programs, token-soup — either yields a
// checked program or diagnostics.
//
//===----------------------------------------------------------------------===//

#include "app/Examples.h"
#include "app/KeywordLexer.h"
#include "lang/Parser.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hotg;

namespace {

void pipelineDoesNotCrash(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Source, Diags);
  // Either outcome is fine; the invariant is "no crash" plus the contract
  // that failure implies diagnostics.
  if (!Prog)
    EXPECT_TRUE(Diags.hasErrors());
}

class FrontendFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrontendFuzzTest, RandomBytes) {
  RandomGen Rng(GetParam());
  for (int Round = 0; Round != 50; ++Round) {
    std::string Source;
    size_t Len = Rng.nextBelow(200);
    for (size_t I = 0; I != Len; ++I)
      Source.push_back(static_cast<char>(Rng.nextInRange(1, 127)));
    pipelineDoesNotCrash(Source);
  }
}

TEST_P(FrontendFuzzTest, TokenSoup) {
  static const char *Tokens[] = {
      "fun",  "extern", "var",  "if",    "else", "while", "return",
      "assert", "error", "int", "bool",  "true", "false", "(",
      ")",    "{",      "}",    "[",     "]",    ";",     ":",
      ",",    "->",     "=",    "==",    "!=",   "<",     "<=",
      "&&",   "||",     "!",    "+",     "-",    "*",     "/",
      "%",    "x",      "y",    "main",  "42",   "0",     "\"s\"",
      "'c'",
  };
  RandomGen Rng(GetParam() * 31 + 7);
  for (int Round = 0; Round != 50; ++Round) {
    std::string Source;
    size_t Len = Rng.nextBelow(80);
    for (size_t I = 0; I != Len; ++I) {
      Source += Tokens[Rng.nextBelow(sizeof(Tokens) / sizeof(*Tokens))];
      Source += " ";
    }
    pipelineDoesNotCrash(Source);
  }
}

TEST_P(FrontendFuzzTest, TruncatedValidPrograms) {
  // Every prefix of every example program must be handled gracefully.
  RandomGen Rng(GetParam() * 97 + 3);
  for (const app::ExampleProgram &Example : app::allExamples()) {
    for (int Round = 0; Round != 8; ++Round) {
      size_t Cut = Rng.nextBelow(Example.Source.size() + 1);
      pipelineDoesNotCrash(Example.Source.substr(0, Cut));
    }
  }
}

TEST_P(FrontendFuzzTest, MutatedValidPrograms) {
  RandomGen Rng(GetParam() * 131 + 11);
  app::LexerApp App = app::buildKeywordLexer({4, 2});
  for (int Round = 0; Round != 30; ++Round) {
    std::string Source = App.Source;
    // Flip a few characters to printable junk.
    for (int M = 0; M != 4; ++M)
      Source[Rng.nextBelow(Source.size())] =
          static_cast<char>(Rng.nextInRange(32, 126));
    pipelineDoesNotCrash(Source);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(FrontendRobustness, DeepNestingDoesNotOverflow) {
  // 200 nested blocks and a deep expression; recursion depth must stay
  // manageable.
  std::string Source = "fun f(x: int) -> int {\n";
  for (int I = 0; I != 200; ++I)
    Source += "{\n";
  Source += "x = 1;\n";
  for (int I = 0; I != 200; ++I)
    Source += "}\n";
  Source += "return x;\n}\n";
  pipelineDoesNotCrash(Source);

  std::string Expr = "x";
  for (int I = 0; I != 200; ++I)
    Expr = "(" + Expr + " + 1)";
  pipelineDoesNotCrash("fun f(x: int) -> int { return " + Expr + "; }");
}

TEST(FrontendRobustness, AllExamplesAndLexerVariantsCompile) {
  for (const app::ExampleProgram &Example : app::allExamples()) {
    DiagnosticEngine Diags;
    EXPECT_TRUE(lang::parseAndCheck(Example.Source, Diags).has_value())
        << Example.Name << ":\n"
        << Diags.render();
  }
  for (unsigned K : {1u, 8u, 24u})
    for (unsigned Chunks : {1u, 2u, 4u})
      for (bool Pre : {false, true}) {
        app::LexerAppSpec Spec;
        Spec.NumKeywords = K;
        Spec.NumChunks = Chunks;
        Spec.PrecomputedHashes = Pre;
        app::LexerApp App = app::buildKeywordLexer(Spec);
        DiagnosticEngine Diags;
        EXPECT_TRUE(lang::parseAndCheck(App.Source, Diags).has_value())
            << App.Source << Diags.render();
      }
}

} // namespace
