//===- tests/test_app_lexer.cpp - Section 7 keyword-lexer application -----------===//
//
// Experiment E9: on the keyword-hash lexer, higher-order test generation
// inverts the hash through its samples while plain dynamic test generation
// is "no better than blackbox random testing".
//
//===----------------------------------------------------------------------===//

#include "app/KeywordLexer.h"
#include "core/Search.h"
#include "interp/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

class LexerAppTest : public ::testing::Test {
protected:
  void build(unsigned NumKeywords = 6, unsigned NumChunks = 2) {
    App = buildKeywordLexer({NumKeywords, NumChunks});
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(App.Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render("lexer");
    Prog = std::move(*Parsed);
    Natives.registerDefaultHashes();
  }

  SearchOptions searchOptions(ConcretizationPolicy Policy,
                              unsigned MaxTests) {
    SearchOptions Options;
    Options.Policy = Policy;
    Options.MaxTests = MaxTests;
    Options.InitialInput = App.identifierInput();
    // Input bytes are printable characters.
    Options.RandomLo = 32;
    Options.RandomHi = 126;
    // classify() is called once per chunk, so its branch sites repeat in
    // the trace; full path exploration (not coverage-directed skipping) is
    // needed to place keywords in later chunks.
    Options.SkipCoveredTargets = false;
    return Options;
  }

  LexerApp App;
  lang::Program Prog;
  NativeRegistry Natives;
};

TEST_F(LexerAppTest, GeneratedProgramCompilesAndRuns) {
  build();
  Interpreter Interp(Prog, Natives);
  RunResult R = Interp.run(App.Entry, App.identifierInput());
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.ReturnValue, 0) << "all-identifier input recognizes nothing";
}

TEST_F(LexerAppTest, KeywordInputsAreRecognizedConcretely) {
  build();
  Interpreter Interp(Prog, Natives);
  // Chunks "whil" + "done" must reach the parser error production.
  RunResult R = Interp.run(App.Entry, App.inputForTokens({1, 2}));
  EXPECT_EQ(R.Status, RunStatus::ErrorHit);

  // A single keyword in chunk 0 returns the production marker 100.
  RunResult R2 = Interp.run(App.Entry, App.inputForTokens({3, 0}));
  EXPECT_EQ(R2.Status, RunStatus::Ok);
  EXPECT_EQ(R2.ReturnValue, 1) << "one keyword recognized";
}

TEST_F(LexerAppTest, HigherOrderInvertsTheHash) {
  build(/*NumKeywords=*/6, /*NumChunks=*/2);
  DirectedSearch Search(Prog, Natives, App.Entry,
                        searchOptions(ConcretizationPolicy::HigherOrder,
                                      /*MaxTests=*/64));
  SearchResult R = Search.run();
  unsigned Matched = countKeywordsMatched(App, R.Cov);
  EXPECT_GE(Matched, App.Spec.NumKeywords - 1)
      << "higher-order generation should synthesize nearly every keyword";
  EXPECT_TRUE(R.foundErrorSite(0)) << "the two-keyword production is "
                                      "reachable by chaining inversions";
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_F(LexerAppTest, PlainDseIsDefeatedByTheHash) {
  build(/*NumKeywords=*/6, /*NumChunks=*/2);
  for (ConcretizationPolicy Policy :
       {ConcretizationPolicy::Unsound, ConcretizationPolicy::Sound}) {
    DirectedSearch Search(Prog, Natives, App.Entry,
                          searchOptions(Policy, /*MaxTests=*/64));
    SearchResult R = Search.run();
    EXPECT_EQ(countKeywordsMatched(App, R.Cov), 0u)
        << "policy " << policyName(Policy)
        << " cannot invert hash4 and should match no keyword";
    EXPECT_FALSE(R.foundErrorSite(0));
  }
}

TEST_F(LexerAppTest, RandomTestingMatchesNoKeyword) {
  build(/*NumKeywords=*/6, /*NumChunks=*/2);
  SearchResult R = runRandomSearch(Prog, Natives, App.Entry,
                                   /*NumTests=*/256, 32, 126, /*Seed=*/7);
  EXPECT_EQ(countKeywordsMatched(App, R.Cov), 0u)
      << "a 4-character keyword is a ~1/95^4 random event";
}

TEST_F(LexerAppTest, ScalesToTwentyFourKeywords) {
  build(/*NumKeywords=*/24, /*NumChunks=*/2);
  DirectedSearch Search(Prog, Natives, App.Entry,
                        searchOptions(ConcretizationPolicy::HigherOrder,
                                      /*MaxTests=*/160));
  SearchResult R = Search.run();
  EXPECT_GE(countKeywordsMatched(App, R.Cov), 20u);
}

TEST_F(LexerAppTest, SingleChunkLexer) {
  build(/*NumKeywords=*/4, /*NumChunks=*/1);
  DirectedSearch Search(Prog, Natives, App.Entry,
                        searchOptions(ConcretizationPolicy::HigherOrder,
                                      /*MaxTests=*/32));
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundErrorSite(0)) << "leading-keyword error production";
}

} // namespace
