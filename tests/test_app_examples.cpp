//===- tests/test_app_examples.cpp - Example-program module unit tests ------------===//

#include "app/Examples.h"

#include "interp/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::interp;

namespace {

TEST(AppExamples, CatalogIsCompleteAndDistinct) {
  auto Examples = allExamples();
  ASSERT_EQ(Examples.size(), 10u);
  std::set<std::string> Names;
  for (const ExampleProgram &E : Examples) {
    EXPECT_TRUE(Names.insert(E.Name).second) << "duplicate " << E.Name;
    EXPECT_FALSE(E.PaperRef.empty());
    EXPECT_FALSE(E.Source.empty());
    EXPECT_FALSE(E.Entry.empty());
  }
  for (const char *Required :
       {"obscure", "foo", "foo_bis", "bar", "pub", "eq_pair", "offset",
        "assign_then_test"})
    EXPECT_TRUE(Names.count(Required)) << Required;
}

TEST(AppExamples, ByNameMatchesCatalog) {
  ExampleProgram Foo = exampleByName("foo");
  EXPECT_EQ(Foo.Name, "foo");
  EXPECT_EQ(Foo.Entry, "foo");
  ASSERT_TRUE(Foo.InitialInput.has_value());
  EXPECT_EQ(Foo.InitialInput->Cells, (std::vector<int64_t>{33, 42}));
}

TEST(AppExamples, InitialInputsMatchEntryLayouts) {
  for (const ExampleProgram &E : allExamples()) {
    lang::Program Prog = compileExample(E);
    const lang::FunctionDecl *Entry = Prog.findFunction(E.Entry);
    ASSERT_NE(Entry, nullptr) << E.Name;
    if (E.InitialInput) {
      InputLayout Layout(*Entry);
      EXPECT_EQ(E.InitialInput->Cells.size(), Layout.size()) << E.Name;
    }
  }
}

TEST(AppExamples, PaperWalkthroughsRunAsStated) {
  // Each example's initial input must land on the paper's starting path
  // (no error on the first run — the searches are what find the bugs).
  NativeRegistry Natives;
  registerExampleNatives(Natives);
  for (const ExampleProgram &E : allExamples()) {
    if (!E.InitialInput)
      continue;
    lang::Program Prog = compileExample(E);
    Interpreter Interp(Prog, Natives);
    RunResult R = Interp.run(E.Entry, *E.InitialInput);
    EXPECT_EQ(R.Status, RunStatus::Ok)
        << E.Name << " must not trip its bug on the walkthrough input";
  }
}

TEST(AppExamples, FstepNativeMatchesExampleSixPremise) {
  EXPECT_EQ(fstepNative(0), 0);
  EXPECT_EQ(fstepNative(1), 1);
  // Elsewhere it is scrambled — in particular not the identity.
  int Different = 0;
  for (int64_t V = 2; V != 20; ++V)
    Different += fstepNative(V) != V;
  EXPECT_GT(Different, 10);
}

TEST(AppExamples, DefaultHashesAreDeterministicAndSpread) {
  EXPECT_EQ(defaultHash1(42), defaultHash1(42));
  EXPECT_NE(defaultHash1(42), defaultHash2(42))
      << "the two hash natives must be independent";
  std::set<int64_t> Outputs;
  for (int64_t V = 0; V != 64; ++V) {
    int64_t H = defaultHash1(V);
    EXPECT_GE(H, 0);
    EXPECT_LT(H, 100000);
    Outputs.insert(H);
  }
  EXPECT_GE(Outputs.size(), 60u) << "collisions should be rare";

  EXPECT_EQ(defaultHash4(1, 2, 3, 4), defaultHash4(1, 2, 3, 4));
  EXPECT_NE(defaultHash4(1, 2, 3, 4), defaultHash4(4, 3, 2, 1))
      << "argument order matters";
}

} // namespace
