//===- tests/test_core_search_unit.cpp - Search/coverage/random-baseline units ----===//

#include "core/Coverage.h"
#include "core/Search.h"
#include "lang/Parser.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

TEST(Coverage, BranchDirectionsAreIndependent) {
  Coverage Cov(3);
  EXPECT_EQ(Cov.totalDirections(), 6u);
  EXPECT_EQ(Cov.coveredDirections(), 0u);
  Cov.noteBranch(1, true);
  EXPECT_TRUE(Cov.isCovered(1, true));
  EXPECT_FALSE(Cov.isCovered(1, false));
  Cov.noteBranch(1, false);
  EXPECT_EQ(Cov.coveredDirections(), 2u);
  EXPECT_FALSE(Cov.isCovered(2, true));
}

TEST(Coverage, NoteTraceAndErrorSites) {
  Coverage Cov(2);
  Cov.noteTrace({{0, true}, {1, false}, {0, true}});
  EXPECT_EQ(Cov.coveredDirections(), 2u);
  Cov.noteErrorSite(0);
  Cov.noteErrorSite(0);
  EXPECT_EQ(Cov.errorSitesReached(), 1u);
  EXPECT_TRUE(Cov.errorSiteReached(0));
  EXPECT_FALSE(Cov.errorSiteReached(1));
}

TEST(Coverage, MergeCombines) {
  Coverage A(2), B(2);
  A.noteBranch(0, true);
  B.noteBranch(1, false);
  B.noteErrorSite(3);
  A.mergeFrom(B);
  EXPECT_TRUE(A.isCovered(0, true));
  EXPECT_TRUE(A.isCovered(1, false));
  EXPECT_TRUE(A.errorSiteReached(3));
}

TEST(Coverage, InvalidBranchIsIgnored) {
  Coverage Cov(1);
  Cov.noteBranch(lang::InvalidBranch, true);
  EXPECT_EQ(Cov.coveredDirections(), 0u);
}

class SearchUnitTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render();
    Prog = std::move(*Parsed);
  }

  lang::Program Prog;
  NativeRegistry Natives;
};

TEST_F(SearchUnitTest, CoversLinearBranchesExhaustively) {
  compile("fun f(x: int) -> int {\n"
          "  if (x == 1000) { return 1; }\n"
          "  if (x == -77) { return 2; }\n"
          "  if (x < -1000000) { return 3; }\n"
          "  return 0;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxTests = 16;
  TestInput Init;
  Init.Cells = {0};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "f", Options);
  SearchResult R = Search.run();
  EXPECT_EQ(R.Cov.coveredDirections(), 6u) << "all branch directions";
  EXPECT_EQ(R.Divergences, 0u) << "no imprecision, no divergences";
}

TEST_F(SearchUnitTest, FindsAssertAndFaultBugs) {
  compile("fun f(x: int, y: int) -> int {\n"
          "  if (x == 7) { assert(y != 0); }\n"
          "  if (x == 9) { return 10 / y; }\n"
          "  return 0;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxTests = 32;
  Options.SkipCoveredTargets = false;
  TestInput Init;
  Init.Cells = {1, 0};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "f", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundStatus(RunStatus::AssertFailed));
  EXPECT_TRUE(R.foundStatus(RunStatus::DivByZero));
}

TEST_F(SearchUnitTest, UnconstrainedInputsKeepParentValues) {
  // The paper: "by picking randomly and then fixing the value of y".
  compile("fun f(x: int, y: int) -> int {\n"
          "  if (x == 5) { error(\"e\"); }\n"
          "  return y;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxTests = 8;
  TestInput Init;
  Init.Cells = {0, 1234};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "f", Options);
  SearchResult R = Search.run();
  ASSERT_TRUE(R.foundErrorSite(0));
  for (const BugRecord &Bug : R.Bugs)
    EXPECT_EQ(Bug.Input.Cells[1], 1234) << "y was never constrained";
}

TEST_F(SearchUnitTest, ExploresLoopIterationsWithoutSkipping) {
  compile("fun f(n: int) -> int {\n"
          "  var i: int = 0;\n"
          "  var s: int = 0;\n"
          "  while (i < n) { s = s + i; i = i + 1; }\n"
          "  if (s == 6) { error(\"sum\"); }\n"
          "  return s;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxTests = 24;
  Options.SkipCoveredTargets = false;
  TestInput Init;
  Init.Cells = {0};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "f", Options);
  SearchResult R = Search.run();
  // s == 6 requires n == 4 (0+1+2+3); reached by unrolling the loop.
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(SearchUnitTest, BudgetIsRespected) {
  compile("fun f(x: int) -> int {\n"
          "  if (x == 1) { return 1; }\n"
          "  if (x == 2) { return 2; }\n"
          "  if (x == 3) { return 3; }\n"
          "  return 0;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxTests = 2;
  DirectedSearch Search(Prog, Natives, "f", Options);
  SearchResult R = Search.run();
  EXPECT_LE(R.testsRun(), 2u);
}

TEST_F(SearchUnitTest, DepthFirstOrderWorks) {
  compile("fun f(x: int, y: int) -> int {\n"
          "  if (x > 0) { if (y > 0) { if (x > y) { error(\"deep\"); } } }\n"
          "  return 0;\n"
          "}");
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.Order = SearchOptions::OrderKind::DepthFirst;
  Options.MaxTests = 16;
  TestInput Init;
  Init.Cells = {-1, -1};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, Natives, "f", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(SearchUnitTest, RandomBaselineFindsShallowBugsOnly) {
  compile("fun f(x: int) -> int {\n"
          "  if (x > 50) { error(\"easy\"); }\n"
          "  if (x == 123456789) { error(\"needle\"); }\n"
          "  return 0;\n"
          "}");
  SearchResult R =
      runRandomSearch(Prog, Natives, "f", /*NumTests=*/128, 0, 99, 3);
  EXPECT_TRUE(R.foundErrorSite(0)) << "~50% per test";
  EXPECT_FALSE(R.foundErrorSite(1)) << "needle outside random range";
  EXPECT_EQ(R.testsRun(), 128u);
}

TEST_F(SearchUnitTest, SamplesAccumulateAcrossRuns) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int, y: int) -> int {\n"
          "  if (x == hash(y)) { error(\"hit\"); }\n"
          "  return 0;\n"
          "}");
  NativeRegistry HashNatives;
  HashNatives.registerDefaultHashes();
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 8;
  TestInput Init;
  Init.Cells = {33, 42};
  Options.InitialInput = Init;
  DirectedSearch Search(Prog, HashNatives, "f", Options);
  SearchResult R = Search.run();
  EXPECT_TRUE(R.foundErrorSite(0));
  EXPECT_GE(Search.samples().size(), 1u);
}

TEST_F(SearchUnitTest, HigherOrderSearchEmitsTelemetryEvents) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int, y: int) -> int {\n"
          "  if (x == hash(y)) { error(\"hit\"); }\n"
          "  return 0;\n"
          "}");
  NativeRegistry HashNatives;
  HashNatives.registerDefaultHashes();
  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 8;
  TestInput Init;
  Init.Cells = {33, 42};
  Options.InitialInput = Init;

  telemetry::RecordingTraceSink Rec;
  telemetry::ScopedSink Guard(&Rec);
  DirectedSearch Search(Prog, HashNatives, "f", Options);
  SearchResult R = Search.run();

  EXPECT_TRUE(R.foundErrorSite(0));
  EXPECT_GE(Rec.countOf(telemetry::EventKind::ValidityQuery), 1u)
      << "a HigherOrder search must consult the validity solver";
  EXPECT_GE(Rec.countOf(telemetry::EventKind::SampleLearned), 1u)
      << "executing hash() must record IOF samples";
  EXPECT_GE(Rec.countOf(telemetry::EventKind::TestRun), 1u);
  EXPECT_GE(Rec.countOf(telemetry::EventKind::Candidate), 1u);
  EXPECT_GE(Rec.countOf(telemetry::EventKind::BugFound), 1u);

  // Every test_run event carries the per-test record of the tentpole
  // spec: input cells, policy, status, coverage delta, elapsed time.
  for (const telemetry::Event &E : Rec.events()) {
    if (E.kind() != telemetry::EventKind::TestRun)
      continue;
    ASSERT_NE(E.find("cells"), nullptr);
    ASSERT_NE(E.find("policy"), nullptr);
    EXPECT_EQ(E.find("policy")->Str, "higher-order");
    ASSERT_NE(E.find("status"), nullptr);
    ASSERT_NE(E.find("new_coverage"), nullptr);
    ASSERT_NE(E.find("us"), nullptr);
  }
}

} // namespace
