//===- tests/test_core_validity.cpp - Validity solver on the paper's formulas -----===//

#include "core/ValiditySolver.h"

#include "core/Post.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::smt;

namespace {

class ValidityTest : public ::testing::Test {
protected:
  TermArena Arena;
  SampleTable Samples;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  FuncId H = Arena.getOrCreateFunc("h", 1);
  FuncId F = Arena.getOrCreateFunc("f", 1);

  TermId h(TermId T) { return Arena.mkUFApp(H, {{T}}); }
  TermId f(TermId T) { return Arena.mkUFApp(F, {{T}}); }

  ValidityAnswer check(TermId Pc, bool AllowLearning = true) {
    ValidityOptions Options;
    Options.AllowLearning = AllowLearning;
    ValiditySolver Solver(Arena, Samples, Options);
    return Solver.checkPost(Pc);
  }
};

TEST_F(ValidityTest, Section42ObscureAlternate) {
  // ∃x, y : x = h(y) with sample h(42) = 567: valid; the strategy is
  // "fix y = 42, set x to 567".
  Samples.record(H, {42}, 567);
  ValidityAnswer A = check(Arena.mkEq(X, h(Y)));
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1), 42);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1), 567);
}

TEST_F(ValidityTest, UnsampledEqualityIsOnlyLearnable) {
  // ∃x, y : x = h(y) with NO samples: no one-shot strategy (the paper's
  // point that satisfiability checking would wrongly invent h), but a
  // learning plan exists.
  ValidityAnswer A = check(Arena.mkEq(X, h(Y)));
  EXPECT_EQ(A.Status, ValidityStatus::NeedsSamples);
  ASSERT_EQ(A.Learn.size(), 1u);
  EXPECT_EQ(A.Learn[0].Func, H);

  ValidityAnswer OneShot = check(Arena.mkEq(X, h(Y)),
                                 /*AllowLearning=*/false);
  EXPECT_EQ(OneShot.Status, ValidityStatus::NotValid);
}

TEST_F(ValidityTest, Example4WithoutSamplesInvalid) {
  // ∃x, y : h(x) > 0 ∧ y = 10 — invalid without samples (h could be
  // constantly 0), learnable with multi-step.
  TermId Pc = Arena.mkAnd(Arena.mkGt(h(X), Arena.mkIntConst(0)),
                          Arena.mkEq(Y, Arena.mkIntConst(10)));
  EXPECT_EQ(check(Pc, /*AllowLearning=*/false).Status,
            ValidityStatus::NotValid);
}

TEST_F(ValidityTest, Example4WithSampleValid) {
  // With h(1) = 5 recorded the formula becomes valid: x = 1, y = 10.
  Samples.record(H, {1}, 5);
  TermId Pc = Arena.mkAnd(Arena.mkGt(h(X), Arena.mkIntConst(0)),
                          Arena.mkEq(Y, Arena.mkIntConst(10)));
  ValidityAnswer A = check(Pc);
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1), 1);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1), 10);
}

TEST_F(ValidityTest, Example4NegativeSampleStaysInvalid) {
  // A sample with h(3) = -7 does not help h(x) > 0.
  Samples.record(H, {3}, -7);
  TermId Pc = Arena.mkGt(h(X), Arena.mkIntConst(0));
  EXPECT_EQ(check(Pc, /*AllowLearning=*/false).Status,
            ValidityStatus::NotValid);
}

TEST_F(ValidityTest, Example5CongruenceStrategy) {
  // ∃x, y : f(x) = f(y) is valid via x = y — no samples needed.
  ValidityAnswer A = check(Arena.mkEq(f(X), f(Y)));
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  auto VX = A.ModelValue.varValue(Arena.getOrCreateVar("x"));
  auto VY = A.ModelValue.varValue(Arena.getOrCreateVar("y"));
  ASSERT_TRUE(VX && VY);
  EXPECT_EQ(*VX, *VY) << "the strategy must set x = y";
}

TEST_F(ValidityTest, Example6AntecedentProvesOffset) {
  // ∃x, y : (f(0)=0 ∧ f(1)=1) ⟹ f(x) = f(y) + 1: valid via x=1, y=0.
  Samples.record(F, {0}, 0);
  Samples.record(F, {1}, 1);
  TermId Pc = Arena.mkEq(f(X), Arena.mkAdd(f(Y), Arena.mkIntConst(1)));
  ValidityAnswer A = check(Pc);
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1), 1);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1), 0);
}

TEST_F(ValidityTest, Example6WithoutAntecedentGeneratesNoTest) {
  // Without the antecedent the formula is invalid; the solver may prove
  // NotValid or give up with Unknown — either way no test is generated,
  // which is Example 6's claim.
  TermId Pc = Arena.mkEq(f(X), Arena.mkAdd(f(Y), Arena.mkIntConst(1)));
  ValidityAnswer A = check(Pc, /*AllowLearning=*/false);
  EXPECT_NE(A.Status, ValidityStatus::Valid);
  EXPECT_NE(A.Status, ValidityStatus::NeedsSamples);
}

TEST_F(ValidityTest, Example7TwoStepPlan) {
  // ∃x, y : (h(42)=567) ⟹ (x = h(y) ∧ y = 10): the one-shot check fails
  // (h(10) unknown) but the plan asks to learn h at 10.
  Samples.record(H, {42}, 567);
  TermId Pc = Arena.mkAnd(Arena.mkEq(X, h(Y)),
                          Arena.mkEq(Y, Arena.mkIntConst(10)));
  ValidityAnswer A = check(Pc);
  ASSERT_EQ(A.Status, ValidityStatus::NeedsSamples);
  ASSERT_EQ(A.Learn.size(), 1u);
  EXPECT_EQ(A.Learn[0].Func, H);
  EXPECT_EQ(A.Learn[0].Args, std::vector<int64_t>{10});
  // The candidate intermediate assignment fixes y = 10.
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1), 10);

  // After learning h(10) = 66 the strategy completes.
  Samples.record(H, {10}, 66);
  ValidityAnswer Second = check(Pc);
  ASSERT_EQ(Second.Status, ValidityStatus::Valid);
  EXPECT_EQ(Second.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1), 66);
  EXPECT_EQ(Second.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1), 10);
}

TEST_F(ValidityTest, Example3MutualHashHasNoStrategy) {
  // ∃x, y : x = h(y) ∧ y = h(x) — not valid (Example 3). With learning
  // it is at best a plan; one-shot must reject.
  Samples.record(H, {42}, 567);
  Samples.record(H, {33}, 123);
  TermId Pc = Arena.mkAnd(Arena.mkEq(X, h(Y)), Arena.mkEq(Y, h(X)));
  ValidityAnswer A = check(Pc, /*AllowLearning=*/false);
  EXPECT_NE(A.Status, ValidityStatus::Valid);
}

TEST_F(ValidityTest, UFFreeFormulaDegeneratestoSatisfiability) {
  TermId Pc = Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(5)),
                          Arena.mkLt(Y, X));
  ValidityAnswer A = check(Pc);
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1), 5);

  EXPECT_EQ(check(Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(1)),
                              Arena.mkEq(X, Arena.mkIntConst(2))))
                .Status,
            ValidityStatus::NotValid);
}

TEST_F(ValidityTest, BooleanConstants) {
  EXPECT_EQ(check(Arena.mkTrue()).Status, ValidityStatus::Valid);
  EXPECT_EQ(check(Arena.mkFalse()).Status, ValidityStatus::NotValid);
}

TEST_F(ValidityTest, DisjunctionUsesAnySupport) {
  // (x = h(y) ∧ false-ish branch) ∨ x = 3: the UF-free disjunct gives a
  // strategy regardless of samples.
  TermId Pc = Arena.mkOr(Arena.mkEq(X, h(Y)),
                         Arena.mkEq(X, Arena.mkIntConst(3)));
  ValidityAnswer A = check(Pc, /*AllowLearning=*/false);
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
}

TEST_F(ValidityTest, HashCollisionDisjunction) {
  // Section 7's inversion with collisions: two sampled arguments map to
  // the same output; either preimage is an acceptable strategy.
  Samples.record(H, {5}, 100);
  Samples.record(H, {9}, 100);
  ValidityAnswer A = check(Arena.mkEq(h(X), Arena.mkIntConst(100)));
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  int64_t V = A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1);
  EXPECT_TRUE(V == 5 || V == 9) << "got " << V;
}

TEST_F(ValidityTest, MultiArgumentSampleBinding) {
  // 4-ary hash inversion (the keyword-lexer shape).
  FuncId H4 = Arena.getOrCreateFunc("h4", 4);
  Samples.record(H4, {119, 104, 105, 108}, 52);
  TermId A0 = Arena.mkVar("a0"), A1 = Arena.mkVar("a1");
  TermId A2 = Arena.mkVar("a2"), A3 = Arena.mkVar("a3");
  TermId Args[4] = {A0, A1, A2, A3};
  TermId Pc = Arena.mkEq(Arena.mkUFApp(H4, Args), Arena.mkIntConst(52));
  ValidityAnswer A = check(Pc);
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("a0"), -1), 119);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("a3"), -1), 108);
}

TEST_F(ValidityTest, StatsArePopulated) {
  Samples.record(H, {1}, 2);
  ValidityOptions Options;
  ValiditySolver Solver(Arena, Samples, Options);
  Solver.checkPost(Arena.mkEq(X, h(Y)));
  EXPECT_GE(Solver.stats().SupportsExplored, 1u);
  EXPECT_GE(Solver.stats().GroundingsTried, 1u);
  EXPECT_EQ(Solver.stats().GroundingsPruned, 0u);
}

// Unknown answers carry a structured reason (docs/robustness.md), mirroring
// the inner solver's Unknown taxonomy at the validity layer.

TEST_F(ValidityTest, GroundingBudgetExhaustionIsReported) {
  Samples.record(H, {42}, 567);
  ValidityOptions Options;
  Options.MaxGroundings = 0;
  ValiditySolver Solver(Arena, Samples, Options);
  ValidityAnswer A = Solver.checkPost(Arena.mkEq(X, h(Y)));
  EXPECT_EQ(A.Status, ValidityStatus::Unknown);
  EXPECT_EQ(A.Reason, "grounding budget exhausted");
}

TEST_F(ValidityTest, SupportBudgetExhaustionIsReported) {
  // A disjunctive POST with more supports than the budget allows, none of
  // them provable: the enumerator gives up rather than concluding.
  Samples.record(H, {42}, 567);
  TermId Lit = Arena.mkEq(X, h(Y));
  TermId F = Arena.mkOr(Arena.mkAnd(Lit, Arena.mkEq(X, Arena.mkIntConst(1))),
                        Arena.mkAnd(Lit, Arena.mkEq(X, Arena.mkIntConst(2))));
  ValidityOptions Options;
  Options.MaxSupports = 1;
  ValiditySolver Solver(Arena, Samples, Options);
  ValidityAnswer A = Solver.checkPost(F);
  if (A.Status == ValidityStatus::Unknown)
    EXPECT_EQ(A.Reason, "support budget exhausted");
}

TEST_F(ValidityTest, ExpiredDeadlineIsReported) {
  Samples.record(H, {42}, 567);
  ValidityOptions Options;
  Options.SolverOpts.Deadline = support::Deadline::afterNanos(0);
  ValiditySolver Solver(Arena, Samples, Options);
  ValidityAnswer A = Solver.checkPost(Arena.mkEq(X, h(Y)));
  EXPECT_EQ(A.Status, ValidityStatus::Unknown);
  EXPECT_EQ(A.Reason, "deadline expired");
}

TEST_F(ValidityTest, CancellationIsReported) {
  Samples.record(H, {42}, 567);
  ValidityOptions Options;
  Options.SolverOpts.Cancel = support::CancelToken::create();
  Options.SolverOpts.Cancel.requestCancel();
  ValiditySolver Solver(Arena, Samples, Options);
  ValidityAnswer A = Solver.checkPost(Arena.mkEq(X, h(Y)));
  EXPECT_EQ(A.Status, ValidityStatus::Unknown);
  EXPECT_EQ(A.Reason, "cancelled");
}

TEST_F(ValidityTest, InactiveStopControlsDoNotPerturbAnswers) {
  Samples.record(H, {42}, 567);
  ValidityOptions Options;
  Options.SolverOpts.Deadline = support::Deadline::afterMillis(60 * 60 * 1000);
  ValiditySolver Solver(Arena, Samples, Options);
  ValidityAnswer A = Solver.checkPost(Arena.mkEq(X, h(Y)));
  ASSERT_EQ(A.Status, ValidityStatus::Valid);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1), 42);
}

} // namespace
