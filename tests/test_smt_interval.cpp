//===- tests/test_smt_interval.cpp - Interval domain unit + property tests --------===//

#include "smt/Interval.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::smt;

namespace {

TEST(Interval, BasicPredicates) {
  EXPECT_TRUE(Interval::empty().isEmpty());
  EXPECT_FALSE(Interval::full().isEmpty());
  EXPECT_TRUE(Interval::point(5).isPoint());
  EXPECT_TRUE(Interval::point(5).contains(5));
  EXPECT_FALSE(Interval::point(5).contains(6));
  EXPECT_FALSE(Interval::full().isFinite());
  EXPECT_TRUE((Interval{1, 9}.isFinite()));
}

TEST(Interval, Width) {
  EXPECT_EQ(Interval::point(3).width(), 1);
  EXPECT_EQ((Interval{1, 10}).width(), 10);
  EXPECT_EQ(Interval::empty().width(), 0);
  EXPECT_EQ(Interval::full().width(), Bound::PosInf);
}

TEST(Interval, Intersect) {
  Interval A{0, 10}, B{5, 20};
  EXPECT_EQ(A.intersect(B), (Interval{5, 10}));
  EXPECT_TRUE((Interval{0, 3}.intersect(Interval{5, 7}).isEmpty()));
  EXPECT_EQ(Interval::full().intersect(A), A);
}

TEST(Interval, AddSaturates) {
  Interval A{1, 2}, B{10, 20};
  EXPECT_EQ(A.add(B), (Interval{11, 22}));
  Interval Big{Bound::PosInf / 2, Bound::PosInf - 1};
  Interval Sum = Big.add(Big);
  EXPECT_EQ(Sum.Hi, Bound::PosInf);
  EXPECT_TRUE(Interval::empty().add(A).isEmpty());
}

TEST(Interval, ScaleHandlesNegatives) {
  Interval A{2, 5};
  EXPECT_EQ(A.scale(3), (Interval{6, 15}));
  EXPECT_EQ(A.scale(-1), (Interval{-5, -2}));
  EXPECT_EQ(A.scale(0), Interval::point(0));
  EXPECT_EQ(Interval::full().scale(-2), Interval::full());
}

TEST(Interval, WithoutPrunesEndpoints) {
  Interval A{3, 7};
  EXPECT_EQ(A.without(3), (Interval{4, 7}));
  EXPECT_EQ(A.without(7), (Interval{3, 6}));
  EXPECT_EQ(A.without(5), A) << "interior holes are not representable";
  EXPECT_TRUE(Interval::point(4).without(4).isEmpty());
  EXPECT_EQ(A.without(99), A);
}

TEST(Interval, ToString) {
  EXPECT_EQ((Interval{1, 2}).toString(), "[1, 2]");
  EXPECT_EQ(Interval::full().toString(), "[-inf, +inf]");
  EXPECT_EQ(Interval::empty().toString(), "[empty]");
}

TEST(Bound, SaturatingArithmetic) {
  EXPECT_EQ(Bound::addSat(Bound::PosInf, 5), Bound::PosInf);
  EXPECT_EQ(Bound::addSat(Bound::NegInf, 5), Bound::NegInf);
  EXPECT_EQ(Bound::addSat(3, 4), 7);
  EXPECT_EQ(Bound::mulSat(Bound::PosInf, -2), Bound::NegInf);
  EXPECT_EQ(Bound::mulSat(0, Bound::PosInf), 0);
  EXPECT_EQ(Bound::mulSat(-3, 4), -12);
}

TEST(Bound, FloorAndCeilDivision) {
  EXPECT_EQ(Bound::divFloor(7, 2), 3);
  EXPECT_EQ(Bound::divFloor(-7, 2), -4);
  EXPECT_EQ(Bound::divCeil(7, 2), 4);
  EXPECT_EQ(Bound::divCeil(-7, 2), -3);
  EXPECT_EQ(Bound::divFloor(7, -2), -4);
  EXPECT_EQ(Bound::divCeil(7, -2), -3);
  EXPECT_EQ(Bound::divFloor(Bound::PosInf, 3), Bound::PosInf);
  EXPECT_EQ(Bound::divFloor(Bound::PosInf, -3), Bound::NegInf);
}

/// Property sweep: interval arithmetic soundly over-approximates the
/// concrete operations for random finite intervals and member points.
class IntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalPropertyTest, AddScaleSoundness) {
  RandomGen Rng(GetParam());
  for (int Iter = 0; Iter != 200; ++Iter) {
    int64_t ALo = Rng.nextInRange(-1000, 1000);
    int64_t AHi = ALo + static_cast<int64_t>(Rng.nextBelow(100));
    int64_t BLo = Rng.nextInRange(-1000, 1000);
    int64_t BHi = BLo + static_cast<int64_t>(Rng.nextBelow(100));
    Interval A{ALo, AHi}, B{BLo, BHi};

    int64_t X = Rng.nextInRange(ALo, AHi);
    int64_t Y = Rng.nextInRange(BLo, BHi);
    ASSERT_TRUE(A.add(B).contains(X + Y));

    int64_t K = Rng.nextInRange(-5, 5);
    ASSERT_TRUE(A.scale(K).contains(X * K));

    ASSERT_TRUE(A.intersect(Interval{X, AHi}).contains(X));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

} // namespace
