//===- tests/test_smt_misc.cpp - Supports, substitution, summary-table units ------===//

#include "dse/Summary.h"
#include "smt/Simplify.h"
#include "smt/Subst.h"
#include "smt/Supports.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::smt;

namespace {

class SupportsTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");

  std::vector<std::vector<std::string>> enumerate(TermId F,
                                                  unsigned Max = 64) {
    std::vector<std::vector<std::string>> Out;
    forEachSupport(Arena, toNNF(Arena, F), Max,
                   [&](const std::vector<TermId> &Literals) {
                     std::vector<std::string> Support;
                     for (TermId L : Literals)
                       Support.push_back(Arena.toString(L));
                     Out.push_back(std::move(Support));
                     return false;
                   });
    return Out;
  }
};

TEST_F(SupportsTest, ConjunctionIsOneSupport) {
  TermId F = Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(1)),
                         Arena.mkLt(Y, X));
  auto Supports = enumerate(F);
  ASSERT_EQ(Supports.size(), 1u);
  EXPECT_EQ(Supports[0].size(), 2u);
}

TEST_F(SupportsTest, DisjunctionSplits) {
  TermId F = Arena.mkOr(Arena.mkEq(X, Arena.mkIntConst(1)),
                        Arena.mkEq(X, Arena.mkIntConst(2)));
  auto Supports = enumerate(F);
  ASSERT_EQ(Supports.size(), 2u);
  EXPECT_EQ(Supports[0].size(), 1u);
}

TEST_F(SupportsTest, NestedOrsMultiply) {
  // (a ∨ b) ∧ (c ∨ d) → 4 supports of 2 literals each.
  TermId A = Arena.mkEq(X, Arena.mkIntConst(1));
  TermId B = Arena.mkEq(X, Arena.mkIntConst(2));
  TermId C = Arena.mkEq(Y, Arena.mkIntConst(3));
  TermId D = Arena.mkEq(Y, Arena.mkIntConst(4));
  TermId F = Arena.mkAnd(Arena.mkOr(A, B), Arena.mkOr(C, D));
  auto Supports = enumerate(F);
  ASSERT_EQ(Supports.size(), 4u);
  for (const auto &S : Supports)
    EXPECT_EQ(S.size(), 2u);
}

TEST_F(SupportsTest, BudgetStopsEnumeration) {
  TermId A = Arena.mkEq(X, Arena.mkIntConst(1));
  TermId B = Arena.mkEq(X, Arena.mkIntConst(2));
  TermId F = Arena.mkAnd(Arena.mkOr(A, B),
                         Arena.mkOr(Arena.mkEq(Y, Arena.mkIntConst(3)),
                                    Arena.mkEq(Y, Arena.mkIntConst(4))));
  SupportEnumStats Stats = forEachSupport(
      Arena, toNNF(Arena, F), 2,
      [](const std::vector<TermId> &) { return false; });
  EXPECT_EQ(Stats.SupportsTried, 2u);
  EXPECT_TRUE(Stats.BudgetExhausted);
}

TEST_F(SupportsTest, CallbackStopsEarly) {
  TermId F = Arena.mkOr(Arena.mkEq(X, Arena.mkIntConst(1)),
                        Arena.mkEq(X, Arena.mkIntConst(2)));
  unsigned Calls = 0;
  forEachSupport(Arena, toNNF(Arena, F), 64,
                 [&](const std::vector<TermId> &) {
                   ++Calls;
                   return true;
                 });
  EXPECT_EQ(Calls, 1u);
}

class SubstTest : public ::testing::Test {
protected:
  TermArena Arena;
  VarId VX = Arena.getOrCreateVar("x");
  VarId VY = Arena.getOrCreateVar("y");
  TermId X = Arena.mkVar(VX);
  TermId Y = Arena.mkVar(VY);
};

TEST_F(SubstTest, ReplacesVariables) {
  VarSubstitution Subst{{VX, Arena.mkIntConst(7)}};
  TermId T = Arena.mkAdd(X, Y);
  EXPECT_EQ(Arena.toString(substituteVars(Arena, T, Subst)), "(+ 7 y)");
}

TEST_F(SubstTest, SimultaneousAndNonRecursive) {
  // x → y and y → x swap without cascading.
  VarSubstitution Subst{{VX, Y}, {VY, X}};
  TermId T = Arena.mkSub(X, Y);
  EXPECT_EQ(Arena.toString(substituteVars(Arena, T, Subst)), "(- y x)");
}

TEST_F(SubstTest, ReachesInsideApplicationsAndFormulas) {
  FuncId H = Arena.getOrCreateFunc("h", 1);
  TermId F = Arena.mkAnd(
      Arena.mkGt(Arena.mkUFApp(H, {{X}}), Arena.mkIntConst(0)),
      Arena.mkEq(Y, Arena.mkIntConst(10)));
  VarSubstitution Subst{{VX, Arena.mkAdd(Y, Arena.mkIntConst(1))}};
  EXPECT_EQ(Arena.toString(substituteVars(Arena, F, Subst)),
            "(and (> (h (+ y 1)) 0) (= y 10))");
}

TEST_F(SubstTest, UnmappedTermsAreShared) {
  VarSubstitution Subst{{VY, Arena.mkIntConst(3)}};
  TermId T = Arena.mkAdd(X, Arena.mkIntConst(5));
  EXPECT_EQ(substituteVars(Arena, T, Subst), T)
      << "terms without mapped variables are returned unchanged";
  EXPECT_EQ(substituteVars(Arena, T, {}), T);
}

TEST(SummaryTableTest, RegisterRecordAndDedup) {
  TermArena Arena;
  dse::SummaryTable Table;
  FuncId F = Arena.getOrCreateFunc("sum:f", 1);
  VarId Formal = Arena.getOrCreateVar("sum:f#v");
  Table.registerFunction(F, {Formal});
  Table.registerFunction(F, {Formal}); // Idempotent.
  EXPECT_TRUE(Table.isSummary(F));
  EXPECT_FALSE(Table.isSummary(F + 1));
  ASSERT_EQ(Table.formalsOf(F).size(), 1u);

  dse::SummaryDisjunct D;
  D.Pre = Arena.mkGt(Arena.mkVar(Formal), Arena.mkIntConst(0));
  D.Out = Arena.mkMul(Arena.mkIntConst(2), Arena.mkVar(Formal));
  EXPECT_TRUE(Table.record(F, D));
  EXPECT_FALSE(Table.record(F, D)) << "identical disjunct deduplicates";
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.disjunctsFor(F).size(), 1u);
  EXPECT_TRUE(Table.disjunctsFor(F + 1).empty());
}

} // namespace
