//===- tests/test_dse_pathconstraint.cpp - PathConstraint + registry units --------===//

#include "dse/PathConstraint.h"
#include "dse/Policy.h"

#include "interp/NativeFunc.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::dse;
using namespace hotg::smt;

namespace {

class PathConstraintTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");

  PathEntry entry(TermId Constraint, bool IsConcretization = false,
                  bool IsCheck = false) {
    PathEntry E;
    E.Constraint = Constraint;
    E.IsConcretization = IsConcretization;
    E.IsCheck = IsCheck;
    return E;
  }
};

TEST_F(PathConstraintTest, PrefixConjunction) {
  PathConstraint PC;
  PC.Entries.push_back(entry(Arena.mkEq(X, Arena.mkIntConst(1))));
  PC.Entries.push_back(entry(Arena.mkLt(Y, X)));
  PC.Entries.push_back(entry(Arena.mkNe(Y, Arena.mkIntConst(0))));

  EXPECT_EQ(Arena.toString(PC.prefixConjunction(Arena, 0)), "true");
  EXPECT_EQ(Arena.toString(PC.prefixConjunction(Arena, 1)), "(= x 1)");
  EXPECT_EQ(Arena.toString(PC.prefixConjunction(Arena, 2)),
            "(and (= x 1) (< y x))");
  EXPECT_EQ(PC.prefixConjunction(Arena, 99), PC.conjunction(Arena))
      << "oversized counts clamp to the full constraint";
}

TEST_F(PathConstraintTest, AlternateNegatesLastOfPrefix) {
  PathConstraint PC;
  PC.Entries.push_back(entry(Arena.mkEq(X, Arena.mkIntConst(1))));
  PC.Entries.push_back(entry(Arena.mkLt(Y, X)));
  EXPECT_EQ(Arena.toString(PC.alternate(Arena, 0)), "(distinct x 1)");
  EXPECT_EQ(Arena.toString(PC.alternate(Arena, 1)),
            "(and (= x 1) (>= y x))");
}

TEST_F(PathConstraintTest, ConcretizationEntriesAreNotNegatable) {
  PathConstraint PC;
  PC.Entries.push_back(
      entry(Arena.mkEq(Y, Arena.mkIntConst(42)), /*IsConcretization=*/true));
  PC.Entries.push_back(entry(Arena.mkEq(X, Arena.mkIntConst(5))));
  PC.Entries.push_back(entry(Arena.mkGt(X, Y), false, /*IsCheck=*/true));
  auto Positions = PC.negatablePositions();
  EXPECT_EQ(Positions, (std::vector<size_t>{1, 2}))
      << "checks negate, concretizations never do";
  // Concretization constraints still participate in prefixes.
  EXPECT_EQ(Arena.toString(PC.alternate(Arena, 1)),
            "(and (= y 42) (distinct x 5))");
}

TEST_F(PathConstraintTest, ToStringMarksSpecialEntries) {
  PathConstraint PC;
  PC.Entries.push_back(
      entry(Arena.mkEq(Y, Arena.mkIntConst(42)), /*IsConcretization=*/true));
  PC.Entries.push_back(entry(Arena.mkLt(X, Y)));
  PC.Truncated = true;
  std::string S = PC.toString(Arena);
  EXPECT_NE(S.find("(concretization)"), std::string::npos);
  EXPECT_NE(S.find("(truncated)"), std::string::npos);
}

TEST(NativeRegistry, RegisterFindCall) {
  interp::NativeRegistry Registry;
  EXPECT_EQ(Registry.find("inc"), nullptr);
  Registry.registerFunc("inc", 1, [](std::span<const int64_t> Args) {
    return Args[0] + 1;
  });
  const interp::NativeFunc *F = Registry.find("inc");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Arity, 1u);
  int64_t Args[1] = {41};
  EXPECT_EQ(Registry.call("inc", Args), 42);
}

TEST(NativeRegistry, ReRegistrationReplaces) {
  interp::NativeRegistry Registry;
  Registry.registerFunc("f", 0,
                        [](std::span<const int64_t>) { return 1; });
  Registry.registerFunc("f", 0,
                        [](std::span<const int64_t>) { return 2; });
  EXPECT_EQ(Registry.call("f", {}), 2);
}

TEST(NativeRegistry, DefaultHashBundle) {
  interp::NativeRegistry Registry;
  Registry.registerDefaultHashes();
  for (const char *Name : {"hash", "hash2", "hash4"})
    EXPECT_NE(Registry.find(Name), nullptr) << Name;
  int64_t One[1] = {7};
  EXPECT_EQ(Registry.call("hash", One), interp::defaultHash1(7));
  int64_t Four[4] = {1, 2, 3, 4};
  EXPECT_EQ(Registry.call("hash4", Four),
            interp::defaultHash4(1, 2, 3, 4));
}

TEST(PolicyNames, AreStable) {
  EXPECT_STREQ(policyName(ConcretizationPolicy::Unsound), "unsound");
  EXPECT_STREQ(policyName(ConcretizationPolicy::Sound), "sound");
  EXPECT_STREQ(policyName(ConcretizationPolicy::SoundDelayed),
               "sound-delayed");
  EXPECT_STREQ(policyName(ConcretizationPolicy::HigherOrder),
               "higher-order");
}

} // namespace
