//===- tests/test_support_telemetry.cpp - Telemetry subsystem unit tests ----------===//

#include "support/JsonReader.h"
#include "support/JsonWriter.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace hotg;
using namespace hotg::telemetry;

namespace {

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.key("a");
  W.value(int64_t(1));
  W.key("b");
  W.beginArray();
  W.value(int64_t(2));
  W.value("x");
  W.value(true);
  W.nullValue();
  W.endArray();
  W.key("c");
  W.beginObject();
  W.endObject();
  W.endObject();
  EXPECT_EQ(Out, "{\"a\":1,\"b\":[2,\"x\",true,null],\"c\":{}}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("nl\ncr\rtab\t"), "nl\\ncr\\rtab\\t");
  EXPECT_EQ(jsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(CounterTest, AddAndReset) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(PhaseTimerTest, AggregatesCountTotalMax) {
  PhaseTimer T;
  T.note(10);
  T.note(30);
  T.note(20);
  EXPECT_EQ(T.count(), 3u);
  EXPECT_EQ(T.totalNs(), 60u);
  EXPECT_EQ(T.maxNs(), 30u);
  T.reset();
  EXPECT_EQ(T.count(), 0u);
  EXPECT_EQ(T.totalNs(), 0u);
  EXPECT_EQ(T.maxNs(), 0u);
}

TEST(PhaseTimerTest, ScopedTimerNotesNonNegativeDuration) {
  PhaseTimer T;
  {
    ScopedTimer S(T);
    EXPECT_GE(S.elapsedNs(), 0u);
  }
  EXPECT_EQ(T.count(), 1u);
}

TEST(RegistryTest, SameNameReturnsSameCounter) {
  Registry &Reg = Registry::global();
  Counter &A = Reg.counter("test.registry.same");
  Counter &B = Reg.counter("test.registry.same");
  EXPECT_EQ(&A, &B);
  uint64_t Before = A.value();
  B.add();
  EXPECT_EQ(A.value(), Before + 1);
  PhaseTimer &TA = Reg.timer("test.registry.timer");
  PhaseTimer &TB = Reg.timer("test.registry.timer");
  EXPECT_EQ(&TA, &TB);
}

TEST(RegistryTest, ResetKeepsRegistrationsValid) {
  Registry &Reg = Registry::global();
  Counter &C = Reg.counter("test.registry.reset");
  C.add(7);
  Reg.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(&Reg.counter("test.registry.reset"), &C);
}

TEST(HistogramTest, CountsAndMaxTrackObservations) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.maxNs(), 0u);
  EXPECT_EQ(H.percentileNs(50), 0u);
  H.note(100);
  H.note(5000);
  H.note(300);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.maxNs(), 5000u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.maxNs(), 0u);
}

TEST(HistogramTest, PercentilesUseNearestRankOverLogBuckets) {
  Histogram H;
  // 90 fast observations in one bucket, 10 slow ones far above.
  for (int I = 0; I != 90; ++I)
    H.note(1000);
  for (int I = 0; I != 10; ++I)
    H.note(1'000'000);
  // p50/p90 land in the fast bucket: upper bound of the bucket holding
  // 1000ns (2^10 = 1024). p99 lands in the slow bucket, clamped to the
  // observed maximum.
  EXPECT_EQ(H.percentileNs(50), 1023u);
  EXPECT_EQ(H.percentileNs(90), 1023u);
  EXPECT_EQ(H.percentileNs(99), 1'000'000u);
  EXPECT_EQ(H.percentileNs(100), 1'000'000u);
}

TEST(HistogramTest, SingleObservationClampsToMax) {
  Histogram H;
  H.note(777);
  EXPECT_EQ(H.percentileNs(50), 777u);
  EXPECT_EQ(H.percentileNs(99), 777u);
}

TEST(RegistryTest, HistogramSameNameSameInstance) {
  Registry &Reg = Registry::global();
  Histogram &A = Reg.histogram("test.registry.hist");
  Histogram &B = Reg.histogram("test.registry.hist");
  EXPECT_EQ(&A, &B);
  A.note(10);
  Reg.reset();
  EXPECT_EQ(A.count(), 0u) << "Registry::reset must clear histograms";
}

TEST(RegistryTest, SnapshotCapturesAllThreeFamilies) {
  Registry &Reg = Registry::global();
  Reg.reset();
  Reg.counter("test.snap.counter").add(3);
  Reg.timer("test.snap.timer").note(500);
  Reg.histogram("test.snap.hist").note(2000);
  RegistrySnapshot Snap = Reg.snapshot();
  bool SawCounter = false, SawTimer = false, SawHist = false;
  for (const auto &[Name, Value] : Snap.Counters)
    if (Name == "test.snap.counter" && Value == 3)
      SawCounter = true;
  for (const auto &Row : Snap.Timers)
    if (Row.Name == "test.snap.timer" && Row.Count == 1 &&
        Row.TotalNs == 500)
      SawTimer = true;
  for (const auto &Row : Snap.Histograms)
    if (Row.Name == "test.snap.hist" && Row.Count == 1 &&
        Row.MaxNs == 2000 && Row.P50Ns == 2000)
      SawHist = true;
  EXPECT_TRUE(SawCounter);
  EXPECT_TRUE(SawTimer);
  EXPECT_TRUE(SawHist);
}

TEST(RegistryTest, RendersTableAndJson) {
  Registry &Reg = Registry::global();
  Reg.counter("test.render.counter").add(5);
  Reg.timer("test.render.timer").note(1000);
  std::string Table = Reg.statsTable();
  EXPECT_NE(Table.find("test.render.counter"), std::string::npos);
  EXPECT_NE(Table.find("test.render.timer"), std::string::npos);
  std::string Json = Reg.statsJson();
  EXPECT_NE(Json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"test.render.counter\":5"), std::string::npos);
  EXPECT_NE(Json.find("\"test.render.timer\":{\"count\":1,\"total_ns\":1000,"
                      "\"max_ns\":1000}"),
            std::string::npos);
}

TEST(RegistryTest, StatsJsonIncludesHistogramPercentiles) {
  Registry &Reg = Registry::global();
  Reg.reset();
  Histogram &H = Reg.histogram("test.render.hist");
  H.note(4000);
  std::string Json = Reg.statsJson();
  EXPECT_NE(Json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"test.render.hist\":{\"count\":1,\"p50_ns\":4000,"
                      "\"p90_ns\":4000,\"p99_ns\":4000,\"max_ns\":4000}"),
            std::string::npos)
      << Json;
  // The rendered JSON must parse cleanly.
  json::ParseResult Doc = json::parse(Json);
  ASSERT_TRUE(Doc) << Doc.error();
  const json::Value *Hist = Doc->get("histograms");
  ASSERT_NE(Hist, nullptr);
  const json::Value *Row = Hist->get("test.render.hist");
  ASSERT_NE(Row, nullptr);
  EXPECT_EQ(Row->getInt("p99_ns"), 4000);
}

TEST(EventTest, SerializesKindAndTypedFields) {
  Event E(EventKind::SolverCheck);
  E.set("result", "sat");
  E.set("decisions", int64_t(-3));
  E.setBool("cached", false);
  int64_t Cells[] = {1, 2, 3};
  E.setArray("cells", Cells);
  EXPECT_EQ(E.toJson(),
            "{\"event\":\"solver_check\",\"result\":\"sat\","
            "\"decisions\":-3,\"cached\":false,\"cells\":[1,2,3]}");
  ASSERT_NE(E.find("result"), nullptr);
  EXPECT_EQ(E.find("result")->Str, "sat");
  EXPECT_EQ(E.find("missing"), nullptr);
}

TEST(EventTest, EscapesStringFields) {
  Event E(EventKind::BugFound);
  E.set("message", "say \"hi\"\nline2");
  EXPECT_EQ(E.toJson(), "{\"event\":\"bug_found\","
                        "\"message\":\"say \\\"hi\\\"\\nline2\"}");
}

TEST(EventKindTest, NamesMatchSchema) {
  EXPECT_STREQ(eventKindName(EventKind::TestRun), "test_run");
  EXPECT_STREQ(eventKindName(EventKind::Candidate), "candidate");
  EXPECT_STREQ(eventKindName(EventKind::SolverCheck), "solver_check");
  EXPECT_STREQ(eventKindName(EventKind::ValidityQuery), "validity_query");
  EXPECT_STREQ(eventKindName(EventKind::SampleLearned), "sample_learned");
  EXPECT_STREQ(eventKindName(EventKind::SummaryApplied), "summary_applied");
  EXPECT_STREQ(eventKindName(EventKind::Divergence), "divergence");
  EXPECT_STREQ(eventKindName(EventKind::BugFound), "bug_found");
}

TEST(SinkTest, NullSinkByDefaultAndZeroEmission) {
  ASSERT_EQ(sink(), nullptr) << "no sink must be attached by default";
  // The instrumentation idiom: with no sink, nothing runs.
  bool Built = false;
  if (TraceSink *S = sink()) {
    Built = true;
    (void)S;
  }
  EXPECT_FALSE(Built);
}

TEST(SinkTest, ScopedSinkAttachesAndRestores) {
  RecordingTraceSink Rec;
  {
    ScopedSink Guard(&Rec);
    ASSERT_EQ(sink(), &Rec);
    Event E(EventKind::TestRun);
    E.set("test", int64_t(1));
    sink()->handle(E);
  }
  EXPECT_EQ(sink(), nullptr);
  EXPECT_EQ(Rec.events().size(), 1u);
  EXPECT_EQ(Rec.countOf(EventKind::TestRun), 1u);
  EXPECT_EQ(Rec.countOf(EventKind::BugFound), 0u);
}

TEST(EventTest, SetDoubleSerializesAsNumber) {
  Event E(EventKind::Heartbeat);
  E.setDouble("rate", 12.5);
  std::string Json = E.toJson();
  json::ParseResult Doc = json::parse(Json);
  ASSERT_TRUE(Doc) << Doc.error();
  const json::Value *Rate = Doc->get("rate");
  ASSERT_NE(Rate, nullptr);
  ASSERT_TRUE(Rate->isNumber());
  EXPECT_DOUBLE_EQ(Rate->asDouble(), 12.5);
}

// Satellite: Event::toJson escaping, verified by decoding the emitted JSON
// with the independent reader and comparing against the original strings.
TEST(EventTest, EscapingRoundTripsThroughParser) {
  const std::string Nasty[] = {
      "say \"hi\"",
      "back\\slash\\",
      "tab\there\nnewline\rcr",
      std::string("nul\0inside", 10),
      "\x01\x02\x1f control bytes",
      "non-ascii: caf\xc3\xa9 \xe2\x82\xac", // café € as raw UTF-8
      "{\"looks\":\"like json\"}",
  };
  for (const std::string &S : Nasty) {
    Event E(EventKind::BugFound);
    E.set("message", S);
    json::ParseResult Doc = json::parse(E.toJson());
    ASSERT_TRUE(Doc) << Doc.error() << " for " << E.toJson();
    EXPECT_EQ(Doc->getString("message"), S);
  }
}

TEST(SpanTest, InactiveWithoutSink) {
  ASSERT_EQ(sink(), nullptr);
  uint64_t Before = currentSpanId();
  ScopedSpan Span("test.nosink");
  EXPECT_FALSE(Span.active());
  EXPECT_EQ(Span.id(), 0u);
  EXPECT_EQ(currentSpanId(), Before);
}

TEST(SpanTest, EmitsPairedBeginEndWithNesting) {
  RecordingTraceSink Rec;
  ScopedSink Guard(&Rec);
  uint64_t OuterId = 0, InnerId = 0;
  {
    ScopedSpan Outer("test.outer");
    ASSERT_TRUE(Outer.active());
    OuterId = Outer.id();
    EXPECT_EQ(currentSpanId(), OuterId);
    {
      ScopedSpan Inner("test.inner");
      InnerId = Inner.id();
      EXPECT_NE(InnerId, OuterId);
      EXPECT_EQ(currentSpanId(), InnerId);
    }
    EXPECT_EQ(currentSpanId(), OuterId);
  }
  ASSERT_EQ(Rec.countOf(EventKind::SpanBegin), 2u);
  ASSERT_EQ(Rec.countOf(EventKind::SpanEnd), 2u);
  // begin(outer), begin(inner), end(inner), end(outer)
  const std::vector<Event> &Events = Rec.events();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Events[0].find("span")->Int, int64_t(OuterId));
  EXPECT_EQ(Events[0].find("parent")->Int, 0);
  EXPECT_EQ(Events[0].find("name")->Str, "test.outer");
  EXPECT_EQ(Events[1].find("span")->Int, int64_t(InnerId));
  EXPECT_EQ(Events[1].find("parent")->Int, int64_t(OuterId));
  EXPECT_EQ(Events[2].kind(), EventKind::SpanEnd);
  EXPECT_EQ(Events[2].find("span")->Int, int64_t(InnerId));
  ASSERT_NE(Events[2].find("dur_ns"), nullptr);
  EXPECT_GE(Events[2].find("dur_ns")->Int, 0);
  EXPECT_EQ(Events[3].find("span")->Int, int64_t(OuterId));
  // Same thread id stamped on all four events.
  int64_t Thread = Events[0].find("thread")->Int;
  EXPECT_GT(Thread, 0);
  for (const Event &E : Events)
    EXPECT_EQ(E.find("thread")->Int, Thread);
}

TEST(SpanTest, AttributionStampsCurrentSpanAndTags) {
  RecordingTraceSink Rec;
  ScopedSink Guard(&Rec);
  ScopedSpan Span("test.attr");
  {
    ScopedAttribution Scope;
    queryAttribution().Test = 7;
    queryAttribution().Candidate = 12;
    queryAttribution().Worker = 2;
    queryAttribution().GroundingFamily = "d1s0p0u0";
    Event E(EventKind::SolverCheck);
    attachAttribution(E);
    EXPECT_EQ(E.find("test")->Int, 7);
    EXPECT_EQ(E.find("candidate")->Int, 12);
    EXPECT_EQ(E.find("worker")->Int, 2);
    EXPECT_EQ(E.find("grounding")->Str, "d1s0p0u0");
    EXPECT_EQ(E.find("span")->Int, int64_t(Span.id()));
  }
  // The RAII scope restored the defaults: negative/empty tags are omitted.
  Event E(EventKind::SolverCheck);
  attachAttribution(E);
  EXPECT_EQ(E.find("test")->Int, 0);
  EXPECT_EQ(E.find("candidate"), nullptr);
  EXPECT_EQ(E.find("worker"), nullptr);
  EXPECT_EQ(E.find("grounding"), nullptr);
}

TEST(SinkTest, RecordingSinkClearResetsEventsAndCounts) {
  RecordingTraceSink Rec;
  ScopedSink Guard(&Rec);
  Event E(EventKind::TestRun);
  sink()->handle(E);
  EXPECT_EQ(Rec.events().size(), 1u);
  Rec.clear();
  EXPECT_EQ(Rec.events().size(), 0u);
  EXPECT_EQ(Rec.countOf(EventKind::TestRun), 0u);
}

TEST(SinkTest, JsonlSinkWritesOneLinePerEvent) {
  std::ostringstream OS;
  JsonlTraceSink Sink(OS);
  Event A(EventKind::TestRun);
  A.set("test", int64_t(1));
  Event B(EventKind::Divergence);
  B.set("test", int64_t(2));
  Sink.handle(A);
  Sink.handle(B);
  EXPECT_EQ(OS.str(), "{\"event\":\"test_run\",\"test\":1}\n"
                      "{\"event\":\"divergence\",\"test\":2}\n");
}

} // namespace
