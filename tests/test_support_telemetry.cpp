//===- tests/test_support_telemetry.cpp - Telemetry subsystem unit tests ----------===//

#include "support/JsonWriter.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace hotg;
using namespace hotg::telemetry;

namespace {

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.key("a");
  W.value(int64_t(1));
  W.key("b");
  W.beginArray();
  W.value(int64_t(2));
  W.value("x");
  W.value(true);
  W.nullValue();
  W.endArray();
  W.key("c");
  W.beginObject();
  W.endObject();
  W.endObject();
  EXPECT_EQ(Out, "{\"a\":1,\"b\":[2,\"x\",true,null],\"c\":{}}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("nl\ncr\rtab\t"), "nl\\ncr\\rtab\\t");
  EXPECT_EQ(jsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(CounterTest, AddAndReset) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(PhaseTimerTest, AggregatesCountTotalMax) {
  PhaseTimer T;
  T.note(10);
  T.note(30);
  T.note(20);
  EXPECT_EQ(T.count(), 3u);
  EXPECT_EQ(T.totalNs(), 60u);
  EXPECT_EQ(T.maxNs(), 30u);
  T.reset();
  EXPECT_EQ(T.count(), 0u);
  EXPECT_EQ(T.totalNs(), 0u);
  EXPECT_EQ(T.maxNs(), 0u);
}

TEST(PhaseTimerTest, ScopedTimerNotesNonNegativeDuration) {
  PhaseTimer T;
  {
    ScopedTimer S(T);
    EXPECT_GE(S.elapsedNs(), 0u);
  }
  EXPECT_EQ(T.count(), 1u);
}

TEST(RegistryTest, SameNameReturnsSameCounter) {
  Registry &Reg = Registry::global();
  Counter &A = Reg.counter("test.registry.same");
  Counter &B = Reg.counter("test.registry.same");
  EXPECT_EQ(&A, &B);
  uint64_t Before = A.value();
  B.add();
  EXPECT_EQ(A.value(), Before + 1);
  PhaseTimer &TA = Reg.timer("test.registry.timer");
  PhaseTimer &TB = Reg.timer("test.registry.timer");
  EXPECT_EQ(&TA, &TB);
}

TEST(RegistryTest, ResetKeepsRegistrationsValid) {
  Registry &Reg = Registry::global();
  Counter &C = Reg.counter("test.registry.reset");
  C.add(7);
  Reg.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(&Reg.counter("test.registry.reset"), &C);
}

TEST(RegistryTest, RendersTableAndJson) {
  Registry &Reg = Registry::global();
  Reg.counter("test.render.counter").add(5);
  Reg.timer("test.render.timer").note(1000);
  std::string Table = Reg.statsTable();
  EXPECT_NE(Table.find("test.render.counter"), std::string::npos);
  EXPECT_NE(Table.find("test.render.timer"), std::string::npos);
  std::string Json = Reg.statsJson();
  EXPECT_NE(Json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"test.render.counter\":5"), std::string::npos);
  EXPECT_NE(Json.find("\"test.render.timer\":{\"count\":1,\"total_ns\":1000,"
                      "\"max_ns\":1000}"),
            std::string::npos);
}

TEST(EventTest, SerializesKindAndTypedFields) {
  Event E(EventKind::SolverCheck);
  E.set("result", "sat");
  E.set("decisions", int64_t(-3));
  E.setBool("cached", false);
  int64_t Cells[] = {1, 2, 3};
  E.setArray("cells", Cells);
  EXPECT_EQ(E.toJson(),
            "{\"event\":\"solver_check\",\"result\":\"sat\","
            "\"decisions\":-3,\"cached\":false,\"cells\":[1,2,3]}");
  ASSERT_NE(E.find("result"), nullptr);
  EXPECT_EQ(E.find("result")->Str, "sat");
  EXPECT_EQ(E.find("missing"), nullptr);
}

TEST(EventTest, EscapesStringFields) {
  Event E(EventKind::BugFound);
  E.set("message", "say \"hi\"\nline2");
  EXPECT_EQ(E.toJson(), "{\"event\":\"bug_found\","
                        "\"message\":\"say \\\"hi\\\"\\nline2\"}");
}

TEST(EventKindTest, NamesMatchSchema) {
  EXPECT_STREQ(eventKindName(EventKind::TestRun), "test_run");
  EXPECT_STREQ(eventKindName(EventKind::Candidate), "candidate");
  EXPECT_STREQ(eventKindName(EventKind::SolverCheck), "solver_check");
  EXPECT_STREQ(eventKindName(EventKind::ValidityQuery), "validity_query");
  EXPECT_STREQ(eventKindName(EventKind::SampleLearned), "sample_learned");
  EXPECT_STREQ(eventKindName(EventKind::SummaryApplied), "summary_applied");
  EXPECT_STREQ(eventKindName(EventKind::Divergence), "divergence");
  EXPECT_STREQ(eventKindName(EventKind::BugFound), "bug_found");
}

TEST(SinkTest, NullSinkByDefaultAndZeroEmission) {
  ASSERT_EQ(sink(), nullptr) << "no sink must be attached by default";
  // The instrumentation idiom: with no sink, nothing runs.
  bool Built = false;
  if (TraceSink *S = sink()) {
    Built = true;
    (void)S;
  }
  EXPECT_FALSE(Built);
}

TEST(SinkTest, ScopedSinkAttachesAndRestores) {
  RecordingTraceSink Rec;
  {
    ScopedSink Guard(&Rec);
    ASSERT_EQ(sink(), &Rec);
    Event E(EventKind::TestRun);
    E.set("test", int64_t(1));
    sink()->handle(E);
  }
  EXPECT_EQ(sink(), nullptr);
  EXPECT_EQ(Rec.events().size(), 1u);
  EXPECT_EQ(Rec.countOf(EventKind::TestRun), 1u);
  EXPECT_EQ(Rec.countOf(EventKind::BugFound), 0u);
}

TEST(SinkTest, JsonlSinkWritesOneLinePerEvent) {
  std::ostringstream OS;
  JsonlTraceSink Sink(OS);
  Event A(EventKind::TestRun);
  A.set("test", int64_t(1));
  Event B(EventKind::Divergence);
  B.set("test", int64_t(2));
  Sink.handle(A);
  Sink.handle(B);
  EXPECT_EQ(OS.str(), "{\"event\":\"test_run\",\"test\":1}\n"
                      "{\"event\":\"divergence\",\"test\":2}\n");
}

} // namespace
