//===- tests/test_smt_linear.cpp - Linear extraction unit tests ------------------===//

#include "smt/Linear.h"

#include <gtest/gtest.h>

using namespace hotg::smt;

namespace {

class LinearTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
};

TEST_F(LinearTest, ExtractsConstants) {
  auto L = extractLinear(Arena, Arena.mkIntConst(7));
  ASSERT_TRUE(L);
  EXPECT_TRUE(L->isConstant());
  EXPECT_EQ(L->Constant, 7);
}

TEST_F(LinearTest, ExtractsVariables) {
  auto L = extractLinear(Arena, X);
  ASSERT_TRUE(L);
  ASSERT_EQ(L->Monomials.size(), 1u);
  EXPECT_EQ(L->Monomials[0].Coeff, 1);
  EXPECT_EQ(L->Monomials[0].Atom, X);
}

TEST_F(LinearTest, CombinesLikeTerms) {
  // 2*x + x - 3*x == 0 monomials.
  TermId T = Arena.mkSub(
      Arena.mkAdd(Arena.mkMul(Arena.mkIntConst(2), X), X),
      Arena.mkMul(Arena.mkIntConst(3), X));
  auto L = extractLinear(Arena, T);
  ASSERT_TRUE(L);
  EXPECT_TRUE(L->Monomials.empty());
  EXPECT_EQ(L->Constant, 0);
}

TEST_F(LinearTest, HandlesNegationAndSubtraction) {
  // -(x - y) = -x + y.
  TermId T = Arena.mkNeg(Arena.mkSub(X, Y));
  auto L = extractLinear(Arena, T);
  ASSERT_TRUE(L);
  EXPECT_EQ(L->coeffOf(X), -1);
  EXPECT_EQ(L->coeffOf(Y), 1);
}

TEST_F(LinearTest, UFAppsAreAtoms) {
  FuncId H = Arena.getOrCreateFunc("h", 1);
  TermId App = Arena.mkUFApp(H, {{X}});
  TermId T = Arena.mkAdd(App, Arena.mkMul(Arena.mkIntConst(2), App));
  auto L = extractLinear(Arena, T);
  ASSERT_TRUE(L);
  EXPECT_EQ(L->coeffOf(App), 3);
  EXPECT_EQ(L->coeffOf(X), 0) << "x is inside the application, not free";
}

TEST_F(LinearTest, NormalizeEquality) {
  // x + 2 == y  →  x - y + 2 = 0.
  TermId Cmp = Arena.mkEq(Arena.mkAdd(X, Arena.mkIntConst(2)), Y);
  auto A = normalizeComparison(Arena, Cmp);
  ASSERT_TRUE(A);
  EXPECT_EQ(A->Rel, LinearRelKind::Eq);
  EXPECT_EQ(A->Expr.coeffOf(X), 1);
  EXPECT_EQ(A->Expr.coeffOf(Y), -1);
  EXPECT_EQ(A->Expr.Constant, 2);
}

TEST_F(LinearTest, NormalizeStrictInequalities) {
  // x < y  →  x - y + 1 <= 0.
  auto Lt = normalizeComparison(Arena, Arena.mkLt(X, Y));
  ASSERT_TRUE(Lt);
  EXPECT_EQ(Lt->Rel, LinearRelKind::Le);
  EXPECT_EQ(Lt->Expr.coeffOf(X), 1);
  EXPECT_EQ(Lt->Expr.Constant, 1);

  // x > y  →  y - x + 1 <= 0.
  auto Gt = normalizeComparison(Arena, Arena.mkGt(X, Y));
  ASSERT_TRUE(Gt);
  EXPECT_EQ(Gt->Rel, LinearRelKind::Le);
  EXPECT_EQ(Gt->Expr.coeffOf(X), -1);
  EXPECT_EQ(Gt->Expr.coeffOf(Y), 1);
  EXPECT_EQ(Gt->Expr.Constant, 1);

  // x >= y  →  y - x <= 0.
  auto Ge = normalizeComparison(Arena, Arena.mkGe(X, Y));
  ASSERT_TRUE(Ge);
  EXPECT_EQ(Ge->Expr.Constant, 0);
  EXPECT_EQ(Ge->Expr.coeffOf(X), -1);
}

TEST_F(LinearTest, AddScaled) {
  LinearExpr A;
  A.add(2, X);
  A.Constant = 1;
  LinearExpr B;
  B.add(1, X);
  B.add(4, Y);
  B.Constant = 10;
  A.addScaled(B, -2);
  EXPECT_EQ(A.coeffOf(X), 0);
  EXPECT_EQ(A.coeffOf(Y), -8);
  EXPECT_EQ(A.Constant, -19);
}

} // namespace
