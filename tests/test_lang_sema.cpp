//===- tests/test_lang_sema.cpp - MiniLang semantic analysis unit tests -----------===//

#include "lang/Sema.h"

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::lang;

namespace {

std::optional<Program> analyze(std::string_view Source,
                               DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  Program Prog = P.parseProgram();
  if (Diags.hasErrors())
    return std::nullopt;
  if (!runSema(Prog, Diags))
    return std::nullopt;
  return Prog;
}

Program analyzeOk(std::string_view Source) {
  DiagnosticEngine Diags;
  auto Prog = analyze(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render();
  return Prog ? std::move(*Prog) : Program{};
}

bool semaFails(std::string_view Source) {
  DiagnosticEngine Diags;
  return !analyze(Source, Diags).has_value();
}

TEST(LangSema, AssignsSlotsToParamsAndLocals) {
  Program Prog = analyzeOk("fun f(x: int, y: bool) -> int {\n"
                           "  var a: int = x;\n"
                           "  { var b: int = a; b = b + 1; }\n"
                           "  return a;\n"
                           "}");
  const FunctionDecl &F = *Prog.Functions[0];
  EXPECT_EQ(F.Params[0].Slot, 0u);
  EXPECT_EQ(F.Params[1].Slot, 1u);
  EXPECT_EQ(F.NumSlots, 4u) << "2 params + 2 locals";
}

TEST(LangSema, NumbersBranchAndErrorSites) {
  Program Prog = analyzeOk("fun f(x: int) -> int {\n"
                           "  if (x > 0) { error(\"a\"); }\n"
                           "  while (x < 10) { x = x + 1; }\n"
                           "  assert(x == 10);\n"
                           "  if (x == 10) { error(\"b\"); }\n"
                           "  return x;\n"
                           "}");
  EXPECT_EQ(Prog.NumBranches, 4u) << "if + while + assert + if";
  EXPECT_EQ(Prog.NumErrorSites, 2u);
}

TEST(LangSema, ScopesShadowAcrossBlocks) {
  Program Prog = analyzeOk("fun f(x: int) -> int {\n"
                           "  { var y: int = 1; x = y; }\n"
                           "  { var y: int = 2; x = y; }\n"
                           "  return x;\n"
                           "}");
  EXPECT_EQ(Prog.Functions[0]->NumSlots, 3u);
}

TEST(LangSema, ResolvesFunctionAndExternCalls) {
  Program Prog = analyzeOk("extern hash(int) -> int;\n"
                           "fun helper(v: int) -> int { return v + 1; }\n"
                           "fun main(x: int) -> int {\n"
                           "  return helper(hash(x));\n"
                           "}");
  const auto &Ret = static_cast<const ReturnStmt &>(
      *Prog.Functions[1]->Body->Body[0]);
  const auto &Outer = static_cast<const CallExpr &>(*Ret.Value);
  EXPECT_EQ(Outer.ResolvedFunction, Prog.Functions[0].get());
  const auto &Inner = static_cast<const CallExpr &>(*Outer.Args[0]);
  EXPECT_TRUE(Inner.callsExtern());
  EXPECT_EQ(Inner.ResolvedExtern, 0u);
}

TEST(LangSema, ExpressionTypesAreRecorded) {
  Program Prog = analyzeOk("fun f(x: int) -> bool { return x == 1; }");
  const auto &Ret = static_cast<const ReturnStmt &>(
      *Prog.Functions[0]->Body->Body[0]);
  EXPECT_TRUE(Ret.Value->ExprType.isBool());
}

TEST(LangSema, RejectsUndeclaredVariable) {
  EXPECT_TRUE(semaFails("fun f() -> int { return nope; }"));
}

TEST(LangSema, RejectsUndeclaredCallee) {
  EXPECT_TRUE(semaFails("fun f() -> int { return g(1); }"));
}

TEST(LangSema, RejectsDuplicateFunctions) {
  EXPECT_TRUE(semaFails("fun f() {} fun f() {}"));
}

TEST(LangSema, RejectsDuplicateParams) {
  EXPECT_TRUE(semaFails("fun f(x: int, x: int) {}"));
}

TEST(LangSema, RejectsRedeclarationInSameScope) {
  EXPECT_TRUE(semaFails("fun f() { var x: int; var x: int; }"));
}

TEST(LangSema, RejectsTypeMismatchInCondition) {
  EXPECT_TRUE(semaFails("fun f(x: int) { if (x) {} }"));
  EXPECT_TRUE(semaFails("fun f(x: int) { while (x + 1) {} }"));
}

TEST(LangSema, RejectsArithmeticOnBool) {
  EXPECT_TRUE(semaFails("fun f(b: bool) -> int { return b + 1; }"));
}

TEST(LangSema, RejectsLogicalOnInt) {
  EXPECT_TRUE(semaFails("fun f(x: int) -> bool { return x && true; }"));
}

TEST(LangSema, RejectsIndexingNonArray) {
  EXPECT_TRUE(semaFails("fun f(x: int) -> int { return x[0]; }"));
}

TEST(LangSema, RejectsWholeArrayAssignment) {
  EXPECT_TRUE(
      semaFails("fun f(a: int[2], b: int[2]) { a = b; }"));
}

TEST(LangSema, RejectsArityMismatch) {
  EXPECT_TRUE(semaFails("extern hash(int) -> int;\n"
                        "fun f(x: int) -> int { return hash(x, x); }"));
  EXPECT_TRUE(semaFails("fun g(a: int, b: int) -> int { return a; }\n"
                        "fun f(x: int) -> int { return g(x); }"));
}

TEST(LangSema, RejectsArrayArgumentToExtern) {
  EXPECT_TRUE(semaFails("extern hash(int) -> int;\n"
                        "fun f(a: int[2]) -> int { return hash(a); }"));
}

TEST(LangSema, RejectsReturnTypeMismatch) {
  EXPECT_TRUE(semaFails("fun f() -> int { return true; }"));
  EXPECT_TRUE(semaFails("fun f() -> bool { return; }"));
  EXPECT_TRUE(semaFails("fun f() { return 1; }"));
}

TEST(LangSema, RejectsArrayInitializer) {
  EXPECT_TRUE(semaFails("fun f() { var a: int[3] = 1; }"));
}

TEST(LangSema, AllowsArrayPassingToFunctions) {
  analyzeOk("fun sum(a: int[4]) -> int { return a[0] + a[3]; }\n"
            "fun f(a: int[4]) -> int { return sum(a); }");
}

TEST(LangSema, RejectsArraySizeMismatchInCall) {
  EXPECT_TRUE(semaFails("fun g(a: int[4]) -> int { return a[0]; }\n"
                        "fun f(a: int[8]) -> int { return g(a); }"));
}

} // namespace
