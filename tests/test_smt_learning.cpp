//===- tests/test_smt_learning.cpp - Conflict learning and unsat cores ----------===//
//
// Coverage for the conflict-learning + core-extraction stack
// (docs/solver.md): nogood learning and non-chronological backjumping in
// the case-split loop (answer-identical to plain search by the chain-replay
// argument), learned-store scoping across push/pop and retarget, probe-
// verified unsat cores with a minimality-ish property (dropping any core
// literal loses the refutation), core-guided grounding pruning in the
// validity solver, and a search-level differential sweep asserting the
// output slice — tests, bugs, coverage, IOF tables — is byte-identical
// with learning on or off for jobs 1 and 4.
//
//===----------------------------------------------------------------------===//

#include "app/Examples.h"
#include "core/Search.h"
#include "core/ValiditySolver.h"
#include "smt/Solver.h"
#include "smt/SolverContext.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace hotg;
using namespace hotg::smt;

namespace {

//===----------------------------------------------------------------------===//
// Nogood learning and backjumping in the case-split loop
//===----------------------------------------------------------------------===//

class LearningTest : public ::testing::Test {
protected:
  TermArena Arena;
  SampleTable Samples;
  TermId A = Arena.mkVar("a");
  TermId B = Arena.mkVar("b");
  FuncId F = Arena.getOrCreateFunc("f", 1);

  TermId f(TermId T) { return Arena.mkUFApp(F, {{T}}); }
  TermId c(int64_t V) { return Arena.mkIntConst(V); }

  SatAnswer check(std::span<const TermId> Lits, bool Learn,
                  SolverStats &Stats) {
    SolverOptions Options;
    Options.Samples = &Samples;
    Options.ConflictLearning = Learn;
    Solver S(Arena, Options);
    SatAnswer Answer = S.checkConjunction(Lits);
    Stats = S.stats();
    return Answer;
  }

  /// The crafted backjump workload: a ∈ {0,1} is decided first (smallest
  /// domain) but is irrelevant — every sample pins f at b's value to
  /// something other than 99, so each b branch conflicts with a mask that
  /// never mentions a's decision level.
  std::vector<TermId> backjumpQuery() {
    Samples.record(F, {0}, 10);
    Samples.record(F, {1}, 11);
    Samples.record(F, {2}, 12);
    return {Arena.mkLe(c(0), A), Arena.mkLe(A, c(1)),
            Arena.mkLe(c(0), B), Arena.mkLe(B, c(2)),
            Arena.mkEq(f(B), c(99))};
  }
};

TEST_F(LearningTest, BackjumpSkipsDecisionsIndependentOfConflict) {
  std::vector<TermId> Query = backjumpQuery();

  SolverStats Plain, Learned;
  SatAnswer Off = check(Query, /*Learn=*/false, Plain);
  SatAnswer On = check(Query, /*Learn=*/true, Learned);

  EXPECT_EQ(Off.Result, SatResult::Unsat);
  EXPECT_EQ(On.Result, SatResult::Unsat)
      << "learning must not change the answer";
  EXPECT_EQ(Plain.Backjumps, 0u) << "plain search never backjumps";
  EXPECT_GE(Learned.Backjumps, 1u)
      << "the b-conflicts never involve a's decision level, so a's "
         "sibling branch must be abandoned non-chronologically";
  EXPECT_GT(Learned.LearnedClauses, 0u);
  EXPECT_LT(Learned.Decisions, Plain.Decisions)
      << "backjumping must skip the sibling's re-enumeration";
}

TEST_F(LearningTest, LearningPreservesModelsOnSatQueries) {
  Samples.record(F, {7}, 70);
  // Satisfiable: b = 7 pins f(b) = 70; a is free in {0, 1}.
  std::vector<TermId> Query{Arena.mkLe(c(0), A), Arena.mkLe(A, c(1)),
                            Arena.mkEq(B, c(7)),
                            Arena.mkEq(f(B), c(70))};
  SolverStats Plain, Learned;
  SatAnswer Off = check(Query, false, Plain);
  SatAnswer On = check(Query, true, Learned);
  ASSERT_TRUE(Off.isSat());
  ASSERT_TRUE(On.isSat());
  // Learning only skips branches plain search refutes, so the first model
  // found is the same model.
  EXPECT_EQ(On.ModelValue.varValueOr(Arena.getOrCreateVar("a"), -1),
            Off.ModelValue.varValueOr(Arena.getOrCreateVar("a"), -1));
  EXPECT_EQ(On.ModelValue.varValueOr(Arena.getOrCreateVar("b"), -1),
            Off.ModelValue.varValueOr(Arena.getOrCreateVar("b"), -1));
  EXPECT_EQ(Learned.Decisions, Plain.Decisions)
      << "no branch was refuted before the model, so nothing to skip";
}

TEST_F(LearningTest, NogoodsRollBackWithTheirScope) {
  // Fold invariant under learning: after a refuted check() learns
  // nogoods, retargeting the same context onto a different literal
  // sequence must answer exactly like a fresh context — the learned store
  // is scoped to the assertion-stack prefix and truncated on pop.
  std::vector<TermId> Refuted = backjumpQuery();
  std::vector<TermId> Sat{Arena.mkLe(c(0), A), Arena.mkLe(A, c(1)),
                          Arena.mkEq(B, c(1)),
                          Arena.mkEq(f(B), c(11))};

  SolverOptions Options;
  Options.Samples = &Samples;
  SolverContext Ctx(Arena, Options);

  SolverStats S1;
  EXPECT_EQ(Ctx.checkFormula(Arena.mkAnd(Refuted), S1).Result,
            SatResult::Unsat);

  SolverStats S2;
  SatAnswer Reused = Ctx.checkFormula(Arena.mkAnd(Sat), S2);

  SolverContext Fresh(Arena, Options);
  SolverStats S3;
  SatAnswer Scratch = Fresh.checkFormula(Arena.mkAnd(Sat), S3);

  ASSERT_TRUE(Reused.isSat());
  ASSERT_TRUE(Scratch.isSat());
  EXPECT_EQ(Reused.ModelValue.varValueOr(Arena.getOrCreateVar("b"), -1),
            Scratch.ModelValue.varValueOr(Arena.getOrCreateVar("b"), -1));
  EXPECT_EQ(S2.Decisions, S3.Decisions)
      << "stale nogoods from the popped prefix must not influence the "
         "reused context";
  EXPECT_EQ(S2.LearnedClauseHits, S3.LearnedClauseHits);
}

TEST_F(LearningTest, PushPopRestoresAnswersAroundLearnedConflicts) {
  // Trail-rollback at the context level: push a scope, refute inside it
  // (learning nogoods against the scoped prefix), pop, and re-check — the
  // base-level query must answer exactly as if the scope never existed.
  Samples.record(F, {3}, 30);
  SolverOptions Options;
  Options.Samples = &Samples;
  SolverContext Ctx(Arena, Options);

  ASSERT_TRUE(Ctx.assertLiteral(Arena.mkLe(c(0), B)));
  ASSERT_TRUE(Ctx.assertLiteral(Arena.mkLe(B, c(3))));

  SolverStats Before;
  SatAnswer Base = Ctx.check(Before);
  ASSERT_TRUE(Base.isSat());

  Ctx.push();
  ASSERT_TRUE(Ctx.assertLiteral(Arena.mkEq(B, c(3))));
  ASSERT_TRUE(Ctx.assertLiteral(Arena.mkEq(f(B), c(99))));
  SolverStats Inner;
  EXPECT_EQ(Ctx.check(Inner).Result, SatResult::Unsat)
      << "the f(3) = 30 sample pin refutes f(b) = 99 under b = 3";
  Ctx.pop();

  SolverStats After;
  SatAnswer Replay = Ctx.check(After);
  ASSERT_TRUE(Replay.isSat());
  EXPECT_EQ(Replay.ModelValue.varValueOr(Arena.getOrCreateVar("b"), -1),
            Base.ModelValue.varValueOr(Arena.getOrCreateVar("b"), -1));
  EXPECT_EQ(After.Decisions, Before.Decisions)
      << "pop must restore the exact pre-push search behavior";
}

//===----------------------------------------------------------------------===//
// Unsat-core extraction
//===----------------------------------------------------------------------===//

class UnsatCoreTest : public ::testing::Test {
protected:
  TermArena Arena;
  SampleTable Samples;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId Z = Arena.mkVar("z");
  FuncId F = Arena.getOrCreateFunc("f", 1);

  TermId f(TermId T) { return Arena.mkUFApp(F, {{T}}); }
  TermId c(int64_t V) { return Arena.mkIntConst(V); }

  SatAnswer checkCore(const std::vector<TermId> &Lits) {
    SolverOptions Options;
    Options.Samples = &Samples;
    Options.ExtractUnsatCores = true;
    Solver S(Arena, Options);
    return S.checkConjunction(Lits);
  }

  SatResult resultOf(const std::vector<TermId> &Lits) {
    SolverOptions Options;
    Options.Samples = &Samples;
    Solver S(Arena, Options);
    return S.checkConjunction(Lits).Result;
  }

  /// The minimality-ish property: the core alone refutes, every core
  /// literal came from the input, and dropping any single literal loses
  /// the refutation (Sat or Unknown, never Unsat).
  void expectMinimalishCore(const std::vector<TermId> &Input,
                            const std::vector<TermId> &Core) {
    ASSERT_FALSE(Core.empty());
    for (TermId L : Core)
      EXPECT_NE(std::find(Input.begin(), Input.end(), L), Input.end())
          << "core literal not in the input: " << Arena.toString(L);
    EXPECT_EQ(resultOf(Core), SatResult::Unsat)
        << "the core must refute standalone";
    if (Core.size() == 1)
      return;
    for (size_t I = 0; I != Core.size(); ++I) {
      std::vector<TermId> Dropped;
      for (size_t J = 0; J != Core.size(); ++J)
        if (J != I)
          Dropped.push_back(Core[J]);
      EXPECT_NE(resultOf(Dropped), SatResult::Unsat)
          << "dropping " << Arena.toString(Core[I])
          << " should lose the refutation";
    }
  }
};

TEST_F(UnsatCoreTest, IntervalContradictionCoreDropsPadding) {
  std::vector<TermId> Lits{Arena.mkLe(c(0), Y), Arena.mkLe(c(0), Z),
                           Arena.mkLe(c(5), X), Arena.mkLe(X, c(3))};
  SatAnswer Answer = checkCore(Lits);
  ASSERT_EQ(Answer.Result, SatResult::Unsat);
  EXPECT_EQ(Answer.UnsatCore.size(), 2u)
      << "only the two x bounds participate";
  expectMinimalishCore(Lits, Answer.UnsatCore);
}

TEST_F(UnsatCoreTest, CongruenceConflictCore) {
  // x = y forces f(x) = f(y); the padding z bound is irrelevant.
  std::vector<TermId> Lits{Arena.mkLe(c(17), Z), Arena.mkEq(X, Y),
                           Arena.mkEq(f(X), c(0)),
                           Arena.mkEq(f(Y), c(1))};
  SatAnswer Answer = checkCore(Lits);
  ASSERT_EQ(Answer.Result, SatResult::Unsat);
  EXPECT_LE(Answer.UnsatCore.size(), 3u);
  expectMinimalishCore(Lits, Answer.UnsatCore);
}

TEST_F(UnsatCoreTest, SamplePinConflictCore) {
  Samples.record(F, {1}, 2);
  std::vector<TermId> Lits{Arena.mkLe(Y, c(9)), Arena.mkEq(X, c(1)),
                           Arena.mkEq(f(X), c(3))};
  SatAnswer Answer = checkCore(Lits);
  ASSERT_EQ(Answer.Result, SatResult::Unsat);
  expectMinimalishCore(Lits, Answer.UnsatCore);
  for (TermId L : Answer.UnsatCore)
    EXPECT_NE(L, Lits[0]) << "the y padding cannot be in the core";
}

TEST_F(UnsatCoreTest, DisjunctiveFormulaUnionsPerSupportCores) {
  // Each disjunct is refuted by its own pair of bounds; the reported core
  // is the union, and the union still refutes conjunctively.
  TermId Left = Arena.mkAnd(Arena.mkLe(c(5), X), Arena.mkLe(X, c(3)));
  TermId Right = Arena.mkAnd(Arena.mkLe(c(7), Y), Arena.mkLe(Y, c(2)));
  SolverOptions Options;
  Options.ExtractUnsatCores = true;
  Solver S(Arena, Options);
  SatAnswer Answer = S.check(Arena.mkOr(Left, Right));
  ASSERT_EQ(Answer.Result, SatResult::Unsat);
  ASSERT_FALSE(Answer.UnsatCore.empty());
  EXPECT_EQ(resultOf(Answer.UnsatCore), SatResult::Unsat);
}

TEST_F(UnsatCoreTest, ExtractionNeverChangesTheAnswer) {
  // Differential: the same queries with extraction off — identical
  // Result and model on the sat side, identical Result on the unsat side.
  Samples.record(F, {1}, 2);
  std::vector<std::vector<TermId>> Queries{
      {Arena.mkLe(c(5), X), Arena.mkLe(X, c(3))},
      {Arena.mkEq(X, Y), Arena.mkEq(f(X), c(0)), Arena.mkEq(f(Y), c(1))},
      {Arena.mkEq(X, c(1)), Arena.mkEq(f(X), c(3))},
      {Arena.mkLe(c(3), X), Arena.mkLt(X, Y), Arena.mkLe(Y, c(5))},
  };
  for (const auto &Q : Queries) {
    SatAnswer WithCores = checkCore(Q);
    SatResult Plain = resultOf(Q);
    EXPECT_EQ(WithCores.Result, Plain);
    if (WithCores.Result != SatResult::Unsat) {
      EXPECT_TRUE(WithCores.UnsatCore.empty());
    }
  }
}

//===----------------------------------------------------------------------===//
// Structured unknown reasons
//===----------------------------------------------------------------------===//

TEST(UnknownReasonCounters, DecisionBudgetSubCounterIsBumped) {
  telemetry::Registry &Reg = telemetry::Registry::global();
  uint64_t Before = Reg.counter("solver.unknown.decision_budget").value();

  TermArena Arena;
  TermId X = Arena.mkVar("x");
  SolverOptions Options;
  Options.MaxDecisions = 0;
  SolverContext Ctx(Arena, Options);
  SolverStats Stats;
  SatAnswer Answer = Ctx.checkFormulaWithTelemetry(
      Arena.mkAnd(Arena.mkLe(Arena.mkIntConst(3), X),
                  Arena.mkLt(X, Arena.mkIntConst(9))),
      Stats);
  ASSERT_EQ(Answer.Result, SatResult::Unknown);
  EXPECT_EQ(Answer.Reason, "decision budget exhausted");
  EXPECT_EQ(Reg.counter("solver.unknown.decision_budget").value(),
            Before + 1);
}

//===----------------------------------------------------------------------===//
// Core-guided grounding pruning in the validity solver
//===----------------------------------------------------------------------===//

class CorePruningTest : public ::testing::Test {
protected:
  TermArena Arena;
  SampleTable Samples;
  TermId X = Arena.mkVar("x");
  FuncId F = Arena.getOrCreateFunc("f", 1);

  TermId f(TermId T) { return Arena.mkUFApp(F, {{T}}); }
  TermId c(int64_t V) { return Arena.mkIntConst(V); }

  std::pair<core::ValidityAnswer, core::ValidityStats>
  solve(TermId Pc, bool Pruning) {
    core::ValidityOptions Options;
    Options.CoreGuidedPruning = Pruning;
    core::ValiditySolver Solver(Arena, Samples, Options);
    core::ValidityAnswer Answer = Solver.checkPost(Pc);
    return {std::move(Answer), Solver.stats()};
  }
};

TEST_F(CorePruningTest, SiblingGroundingsSharingACoreAreSkipped) {
  // The support literals alone are contradictory (f(x) can't equal both
  // 1 and 2), so the first grounding's core refutes every sibling before
  // the inner solver sees it.
  Samples.record(F, {0}, 1);
  Samples.record(F, {1}, 1);
  Samples.record(F, {2}, 1);
  TermId Pc = Arena.mkAnd(Arena.mkEq(f(X), c(1)), Arena.mkEq(f(X), c(2)));

  auto [Off, OffStats] = solve(Pc, false);
  auto [On, OnStats] = solve(Pc, true);

  EXPECT_EQ(On.Status, Off.Status);
  EXPECT_EQ(OffStats.GroundingsPruned, 0u);
  EXPECT_GT(OnStats.GroundingsPruned, 0u)
      << "sibling groundings of the contradictory support must be pruned";
  EXPECT_LT(OnStats.GroundingsTried, OffStats.GroundingsTried);
  EXPECT_EQ(OnStats.GroundingsTried + OnStats.GroundingsPruned,
            OffStats.GroundingsTried + OffStats.GroundingsPruned)
      << "pruning must not change the enumeration size";
}

TEST_F(CorePruningTest, PrunedGroundingsSpendTheBudget) {
  // A pruned grounding behaves exactly like an Unsat answer, including
  // its budget unit: the grounding-budget Unknown fires at the same point
  // with pruning on or off.
  Samples.record(F, {0}, 1);
  Samples.record(F, {1}, 1);
  Samples.record(F, {2}, 1);
  TermId Pc = Arena.mkAnd(Arena.mkEq(f(X), c(1)), Arena.mkEq(f(X), c(2)));

  core::ValidityOptions Options;
  Options.MaxGroundings = 2;
  for (bool Pruning : {false, true}) {
    Options.CoreGuidedPruning = Pruning;
    core::ValiditySolver Solver(Arena, Samples, Options);
    core::ValidityAnswer A = Solver.checkPost(Pc);
    EXPECT_EQ(A.Status, core::ValidityStatus::Unknown)
        << "pruning=" << Pruning;
    EXPECT_EQ(A.Reason, "grounding budget exhausted")
        << "pruning=" << Pruning;
    EXPECT_EQ(Solver.stats().GroundingsTried +
                  Solver.stats().GroundingsPruned,
              2u)
        << "pruning=" << Pruning;
  }
}

TEST_F(CorePruningTest, ValidAnswersSurvivePruning) {
  // A satisfiable strategy query: pruning must not skip the grounding
  // that carries the strategy.
  Samples.record(F, {42}, 567);
  TermId Y = Arena.mkVar("y");
  TermId Pc = Arena.mkEq(X, f(Y));
  auto [Off, OffStats] = solve(Pc, false);
  auto [On, OnStats] = solve(Pc, true);
  ASSERT_EQ(Off.Status, core::ValidityStatus::Valid);
  ASSERT_EQ(On.Status, core::ValidityStatus::Valid);
  EXPECT_EQ(On.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1),
            Off.ModelValue.varValueOr(Arena.getOrCreateVar("y"), -1));
  EXPECT_EQ(On.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1),
            Off.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1));
}

//===----------------------------------------------------------------------===//
// Search-level differential sweep: learning on/off × jobs 1/4
//===----------------------------------------------------------------------===//

/// The output slice of a SearchResult that must be byte-identical with
/// learning on or off: tests, bugs, coverage, divergences, multi-step
/// runs. Query-work counters (checks, decisions, groundings) legitimately
/// differ — fewer inner solver calls is the point — and are compared only
/// across jobs values within one learning mode.
void expectSameOutput(const core::SearchResult &A,
                      const core::SearchResult &B, const char *What) {
  ASSERT_EQ(A.Tests.size(), B.Tests.size()) << What;
  for (size_t I = 0; I != A.Tests.size(); ++I) {
    EXPECT_EQ(A.Tests[I].Input.Cells, B.Tests[I].Input.Cells)
        << What << " test #" << I;
    EXPECT_EQ(A.Tests[I].Status, B.Tests[I].Status) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Diverged, B.Tests[I].Diverged) << What;
    EXPECT_EQ(A.Tests[I].Intermediate, B.Tests[I].Intermediate) << What;
  }
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size()) << What;
  for (size_t I = 0; I != A.Bugs.size(); ++I) {
    EXPECT_EQ(A.Bugs[I].Input.Cells, B.Bugs[I].Input.Cells) << What;
    EXPECT_EQ(A.Bugs[I].Status, B.Bugs[I].Status) << What;
    EXPECT_EQ(A.Bugs[I].Site, B.Bugs[I].Site) << What;
    EXPECT_EQ(A.Bugs[I].FoundAtTest, B.Bugs[I].FoundAtTest) << What;
  }
  EXPECT_TRUE(A.Cov == B.Cov) << What << ": coverage differs";
  EXPECT_EQ(A.Divergences, B.Divergences) << What;
  EXPECT_EQ(A.MultiStepRuns, B.MultiStepRuns) << What;
}

/// Within one learning mode, jobs must not change anything, including the
/// work aggregates (the existing any-jobs determinism contract).
void expectSameWork(const core::SearchResult &A,
                    const core::SearchResult &B, const char *What) {
  expectSameOutput(A, B, What);
  EXPECT_EQ(A.SolverCalls, B.SolverCalls) << What;
  EXPECT_EQ(A.ValidityCalls, B.ValidityCalls) << What;
  EXPECT_EQ(A.SolverQueryStats.Checks, B.SolverQueryStats.Checks) << What;
  EXPECT_EQ(A.SolverQueryStats.Decisions, B.SolverQueryStats.Decisions)
      << What;
  EXPECT_EQ(A.SolverQueryStats.LearnedClauses,
            B.SolverQueryStats.LearnedClauses)
      << What;
  EXPECT_EQ(A.SolverQueryStats.Backjumps, B.SolverQueryStats.Backjumps)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsTried,
            B.ValidityQueryStats.GroundingsTried)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsPruned,
            B.ValidityQueryStats.GroundingsPruned)
      << What;
}

class LearningSearchSweep
    : public ::testing::TestWithParam<dse::ConcretizationPolicy> {};

TEST_P(LearningSearchSweep, OutputIdenticalWithLearningOnOrOff) {
  dse::ConcretizationPolicy Policy = GetParam();
  for (const app::ExampleProgram &Example : app::allExamples()) {
    lang::Program Prog = app::compileExample(Example);
    interp::NativeRegistry Natives;
    app::registerExampleNatives(Natives);

    auto RunArm = [&](bool Learn, unsigned Jobs) {
      core::SearchOptions Options;
      Options.Policy = Policy;
      Options.MaxTests = 24;
      Options.Jobs = Jobs;
      Options.InitialInput = Example.InitialInput;
      Options.SkipCoveredTargets = false;
      Options.SolverOpts.ConflictLearning = Learn;
      Options.ValidityOpts.CoreGuidedPruning = Learn;
      core::DirectedSearch Search(Prog, Natives, Example.Entry, Options);
      core::SearchResult Result = Search.run();
      return std::make_pair(std::move(Result), Search.exportSamples());
    };

    auto [On1, OnSamples1] = RunArm(true, 1);
    auto [On4, OnSamples4] = RunArm(true, 4);
    auto [Off1, OffSamples1] = RunArm(false, 1);
    auto [Off4, OffSamples4] = RunArm(false, 4);

    expectSameWork(On1, On4, Example.Name.c_str());
    expectSameWork(Off1, Off4, Example.Name.c_str());
    expectSameOutput(On1, Off1, Example.Name.c_str());
    EXPECT_EQ(OnSamples1, OnSamples4) << Example.Name;
    EXPECT_EQ(OffSamples1, OffSamples4) << Example.Name;
    EXPECT_EQ(OnSamples1, OffSamples1)
        << Example.Name << ": learned IOF tables must match";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, LearningSearchSweep,
    ::testing::Values(dse::ConcretizationPolicy::Unsound,
                      dse::ConcretizationPolicy::Sound,
                      dse::ConcretizationPolicy::SoundDelayed,
                      dse::ConcretizationPolicy::HigherOrder),
    [](const auto &Info) {
      std::string Name = dse::policyName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
