//===- tests/test_support_tracetools.cpp - JSON reader + trace analysis -----------===//
//
// Unit tests for the offline observability stack: the JSON reader, the
// JSONL trace loader/validator, span-tree reconstruction, the profiling
// report, and the Chrome-trace / search-tree exports — first over small
// synthetic traces, then end-to-end against a real in-process search
// recorded through JsonlTraceSink.
//
//===----------------------------------------------------------------------===//

#include "app/KeywordLexer.h"
#include "core/Search.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "support/JsonReader.h"
#include "support/Telemetry.h"
#include "support/TraceAnalysis.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace hotg;

namespace {

//===----------------------------------------------------------------------===//
// JSON reader
//===----------------------------------------------------------------------===//

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(json::parse("null")->isNull());
  EXPECT_EQ(json::parse("true")->asBool(), true);
  EXPECT_EQ(json::parse("false")->asBool(), false);
  json::ParseResult I = json::parse("  -42 ");
  ASSERT_TRUE(I);
  EXPECT_TRUE(I->isInt());
  EXPECT_EQ(I->asInt(), -42);
  json::ParseResult D = json::parse("2.5e1");
  ASSERT_TRUE(D);
  EXPECT_TRUE(D->isDouble());
  EXPECT_DOUBLE_EQ(D->asDouble(), 25.0);
  json::ParseResult S = json::parse("\"hi\"");
  ASSERT_TRUE(S);
  EXPECT_EQ(S->asString(), "hi");
}

TEST(JsonReaderTest, ParsesNestedStructures) {
  json::ParseResult Doc =
      json::parse(R"({"a":[1,{"b":true},null],"c":{"d":"x"}})");
  ASSERT_TRUE(Doc) << Doc.error();
  const json::Value *A = Doc->get("a");
  ASSERT_NE(A, nullptr);
  ASSERT_TRUE(A->isArray());
  ASSERT_EQ(A->asArray().size(), 3u);
  EXPECT_EQ(A->asArray()[0].asInt(), 1);
  EXPECT_TRUE(A->asArray()[1].get("b")->asBool());
  EXPECT_TRUE(A->asArray()[2].isNull());
  EXPECT_EQ(Doc->get("c")->getString("d"), "x");
}

TEST(JsonReaderTest, KeepsInt64AndFallsBackToDouble) {
  json::ParseResult Max = json::parse("9223372036854775807");
  ASSERT_TRUE(Max);
  EXPECT_TRUE(Max->isInt());
  EXPECT_EQ(Max->asInt(), INT64_MAX);
  json::ParseResult Min = json::parse("-9223372036854775808");
  ASSERT_TRUE(Min);
  EXPECT_TRUE(Min->isNumber());
  EXPECT_DOUBLE_EQ(Min->asDouble(), -9223372036854775808.0);
  // One past INT64_MAX cannot stay integral.
  json::ParseResult Over = json::parse("9223372036854775808");
  ASSERT_TRUE(Over);
  EXPECT_TRUE(Over->isDouble());
}

TEST(JsonReaderTest, DecodesEscapesIncludingSurrogatePairs) {
  json::ParseResult Doc =
      json::parse(R"("q\" b\\ s\/ n\n t\t u\u0041 e\u20ac g\ud83d\ude00")");
  ASSERT_TRUE(Doc) << Doc.error();
  EXPECT_EQ(Doc->asString(),
            "q\" b\\ s/ n\n t\t uA e\xe2\x82\xac g\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse(""));
  EXPECT_FALSE(json::parse("{\"a\":1} trailing"));
  EXPECT_FALSE(json::parse("\"unterminated"));
  EXPECT_FALSE(json::parse("{\"a\" 1}"));
  EXPECT_FALSE(json::parse("[1,]"));
  EXPECT_FALSE(json::parse("tru"));
  EXPECT_FALSE(json::parse("\"\\ud83d\"")) << "lone high surrogate";
  EXPECT_FALSE(json::parse("\"\\x41\"")) << "invalid escape";
  // Errors carry a position.
  json::ParseResult Bad = json::parse("{\"a\":}");
  ASSERT_FALSE(Bad);
  EXPECT_NE(Bad.error().find("offset"), std::string::npos) << Bad.error();
}

TEST(JsonReaderTest, AccessorHelpersReturnDefaults) {
  json::ParseResult Doc = json::parse(R"({"n":3,"s":"str"})");
  ASSERT_TRUE(Doc);
  EXPECT_EQ(Doc->getInt("n"), 3);
  EXPECT_EQ(Doc->getInt("missing", -7), -7);
  EXPECT_EQ(Doc->getInt("s", -7), -7) << "non-number falls back";
  EXPECT_EQ(Doc->getString("s"), "str");
  EXPECT_EQ(Doc->getString("n", "dflt"), "dflt");
  EXPECT_EQ(Doc->get("missing"), nullptr);
}

//===----------------------------------------------------------------------===//
// Trace loading and validation (synthetic traces)
//===----------------------------------------------------------------------===//

trace::Trace load(const std::string &Text) {
  std::istringstream In(Text);
  return trace::loadTrace(In);
}

// A minimal well-formed trace: one search.run span wrapping two phase
// spans, one attributed solver check, one validity query, one heartbeat,
// and the closing summary. Used by the validator, span, and report tests.
const char *miniTrace() {
  return R"({"event":"span_begin","span":1,"parent":0,"thread":1,"name":"search.run","ts_ns":0}
{"event":"span_begin","span":2,"parent":1,"thread":1,"name":"search.candidate","ts_ns":100}
{"event":"solver_check","result":"sat","supports":1,"decisions":4,"propagations":9,"ns":5000,"scope_depth":2,"cache":"hit","test":3,"candidate":7,"span":2}
{"event":"solver_check","result":"unsat","supports":0,"decisions":1,"propagations":2,"ns":300,"cache":"miss"}
{"event":"validity_query","status":"valid","supports":1,"groundings_tried":2,"groundings_pruned":3,"learn_requests":0,"ns":9000,"test":2,"candidate":5,"worker":1,"grounding":"d1s0p0u0","span":2}
{"event":"span_end","span":2,"parent":1,"thread":1,"name":"search.candidate","ts_ns":700,"dur_ns":600}
{"event":"span_begin","span":3,"parent":1,"thread":1,"name":"search.test","ts_ns":700}
{"event":"span_end","span":3,"parent":1,"thread":1,"name":"search.test","ts_ns":900,"dur_ns":200}
{"event":"heartbeat","ts_ns":950,"elapsed_ms":1,"tests":4,"tests_per_s":4000.0,"solver_checks":2,"solver_checks_per_s":2000.0,"cache_hits":1,"cache_misses":1,"cache_hit_rate":0.5,"queue_depth":0,"frontier":3}
{"event":"search_summary","stop_reason":"test-budget","tests":4,"bugs":1,"covered_directions":6,"divergences":0,"worker_failures":0,"inline_retries":0}
{"event":"span_end","span":1,"parent":0,"thread":1,"name":"search.run","ts_ns":1000,"dur_ns":1000}
)";
}

TEST(TraceLoadTest, SkipsBlanksAndReportsBadLines) {
  trace::Trace T = load("\n"
                        "{\"event\":\"summary_applied\",\"applications\":2}\n"
                        "not json\n"
                        "\n"
                        "{\"noevent\":1}\n"
                        "[1,2]\n");
  ASSERT_EQ(T.Events.size(), 1u);
  EXPECT_EQ(T.Events[0].Kind, "summary_applied");
  EXPECT_EQ(T.Events[0].Line, 2u);
  ASSERT_EQ(T.Errors.size(), 3u);
  EXPECT_NE(T.Errors[0].find("line 3"), std::string::npos) << T.Errors[0];
}

TEST(TraceValidateTest, AcceptsWellFormedTrace) {
  trace::Trace T = load(miniTrace());
  ASSERT_TRUE(T.Errors.empty());
  std::vector<std::string> Problems = trace::validateTrace(T);
  EXPECT_TRUE(Problems.empty())
      << (Problems.empty() ? "" : Problems.front());
}

TEST(TraceValidateTest, RejectsSchemaViolations) {
  // Unknown kind.
  EXPECT_FALSE(
      trace::validateTrace(load("{\"event\":\"mystery\"}\n")).empty());
  // Missing required field (summary_applied needs applications).
  EXPECT_FALSE(
      trace::validateTrace(load("{\"event\":\"summary_applied\"}\n"))
          .empty());
  // Wrong type.
  EXPECT_FALSE(trace::validateTrace(
                   load("{\"event\":\"summary_applied\","
                        "\"applications\":\"two\"}\n"))
                   .empty());
  // Undeclared field.
  EXPECT_FALSE(trace::validateTrace(
                   load("{\"event\":\"summary_applied\","
                        "\"applications\":2,\"bogus\":1}\n"))
                   .empty());
}

TEST(TraceValidateTest, RejectsBrokenSpanNesting) {
  // End without begin.
  EXPECT_FALSE(
      trace::validateTrace(
          load(R"({"event":"span_end","span":9,"parent":0,"thread":1,"name":"x","ts_ns":5,"dur_ns":5})"
               "\n"))
          .empty());
  // Unclosed span at end of trace.
  EXPECT_FALSE(
      trace::validateTrace(
          load(R"({"event":"span_begin","span":1,"parent":0,"thread":1,"name":"x","ts_ns":0})"
               "\n"))
          .empty());
  // Interleaved (non-stack) close order on one thread.
  std::string Crossed =
      R"({"event":"span_begin","span":1,"parent":0,"thread":1,"name":"a","ts_ns":0})"
      "\n"
      R"({"event":"span_begin","span":2,"parent":1,"thread":1,"name":"b","ts_ns":1})"
      "\n"
      R"({"event":"span_end","span":1,"parent":0,"thread":1,"name":"a","ts_ns":2,"dur_ns":2})"
      "\n"
      R"({"event":"span_end","span":2,"parent":1,"thread":1,"name":"b","ts_ns":3,"dur_ns":2})"
      "\n";
  EXPECT_FALSE(trace::validateTrace(load(Crossed)).empty());
}

//===----------------------------------------------------------------------===//
// Span forest and report
//===----------------------------------------------------------------------===//

TEST(SpanForestTest, RebuildsNestedTree) {
  trace::SpanForest F = trace::buildSpans(load(miniTrace()));
  ASSERT_EQ(F.Nodes.size(), 3u);
  ASSERT_EQ(F.Roots.size(), 1u);
  const trace::SpanNode *Root = F.findRoot("search.run");
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->Id, 1u);
  EXPECT_EQ(Root->durationNs(), 1000u);
  ASSERT_EQ(Root->Children.size(), 2u);
  EXPECT_EQ(F.Nodes[Root->Children[0]].Name, "search.candidate");
  EXPECT_EQ(F.Nodes[Root->Children[0]].durationNs(), 600u);
  EXPECT_EQ(F.Nodes[Root->Children[1]].Name, "search.test");
  const trace::SpanNode *ById = F.findById(3);
  ASSERT_NE(ById, nullptr);
  EXPECT_EQ(ById->Name, "search.test");
  EXPECT_EQ(F.findById(42), nullptr);
  EXPECT_EQ(F.findRoot("nope"), nullptr);
}

TEST(ReportTest, ComputesCoverageSelfTimeAndSlowQueries) {
  trace::Report R = trace::buildReport(load(miniTrace()), /*TopK=*/2);
  EXPECT_EQ(R.SearchWallNs, 1000u);
  // Direct children cover 600 + 200 of the 1000ns root.
  EXPECT_DOUBLE_EQ(R.SpanCoverage, 0.8);
  EXPECT_EQ(R.StopReason, "test-budget");
  EXPECT_EQ(R.Tests, 0u) << "counted from test_run events, none here";
  EXPECT_EQ(R.SolverChecks, 2u);
  EXPECT_EQ(R.ValidityQueries, 1u);
  EXPECT_EQ(R.Heartbeats, 1u);
  EXPECT_EQ(R.CacheHits, 1u);
  EXPECT_EQ(R.CacheMisses, 1u);

  // Phases sorted by total, self excludes child spans.
  ASSERT_FALSE(R.Phases.empty());
  EXPECT_EQ(R.Phases[0].Name, "search.run");
  EXPECT_EQ(R.Phases[0].TotalNs, 1000u);
  EXPECT_EQ(R.Phases[0].SelfNs, 200u);

  // Slowest first, attribution carried through.
  ASSERT_EQ(R.SlowQueries.size(), 2u);
  EXPECT_EQ(R.SlowQueries[0].Kind, "validity_query");
  EXPECT_EQ(R.SlowQueries[0].Ns, 9000);
  EXPECT_EQ(R.SlowQueries[0].Test, 2);
  EXPECT_EQ(R.SlowQueries[0].Worker, 1);
  EXPECT_EQ(R.SlowQueries[0].Grounding, "d1s0p0u0");
  EXPECT_EQ(R.SlowQueries[1].Kind, "solver_check");
  EXPECT_EQ(R.SlowQueries[1].Ns, 5000);
  EXPECT_EQ(R.SlowQueries[1].Cache, "hit");
  EXPECT_EQ(R.SlowQueries[1].ScopeDepth, 2);

  std::string Text = trace::renderReport(R);
  EXPECT_NE(Text.find("search.run"), std::string::npos);
  EXPECT_NE(Text.find("80.0% attributed"), std::string::npos) << Text;
  EXPECT_NE(Text.find("validity_query"), std::string::npos);
}

TEST(ChromeExportTest, EmitsValidTraceEventJson) {
  std::string Chrome = trace::exportChromeTrace(load(miniTrace()));
  std::vector<std::string> Problems = trace::validateChromeTrace(Chrome);
  EXPECT_TRUE(Problems.empty())
      << (Problems.empty() ? "" : Problems.front());
  json::ParseResult Doc = json::parse(Chrome);
  ASSERT_TRUE(Doc) << Doc.error();
  const json::Value *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  // 3 spans as "X" events + 1 heartbeat instant.
  ASSERT_EQ(Events->asArray().size(), 4u);
  EXPECT_EQ(Events->asArray()[0].getString("ph"), "X");
  EXPECT_EQ(Events->asArray()[0].getString("name"), "search.run");

  // The structural validator actually rejects garbage.
  EXPECT_FALSE(trace::validateChromeTrace("[]").empty());
  EXPECT_FALSE(
      trace::validateChromeTrace("{\"traceEvents\":[{\"ph\":\"X\"}]}")
          .empty());
}

TEST(SearchTreeExportTest, EmitsParentChildEdges) {
  std::string Dot = trace::exportSearchTreeDot(
      load(R"({"event":"test_run","test":1,"policy":"higher-order","cells":[0],"status":"ok","intermediate":false,"diverged":false,"pc_size":1,"concretizations":0,"uf_apps":0,"samples_recorded":0,"new_coverage":2,"us":10})"
           "\n"
           R"({"event":"test_run","test":2,"policy":"higher-order","cells":[1],"status":"error","intermediate":false,"diverged":false,"from_candidate":4,"parent_test":1,"negate_index":0,"pc_size":1,"concretizations":0,"uf_apps":0,"samples_recorded":0,"new_coverage":0,"us":10})"
           "\n"
           R"({"event":"bug_found","test":2,"status":"error","cells":[1]})"
           "\n"));
  EXPECT_NE(Dot.find("digraph search"), std::string::npos);
  EXPECT_NE(Dot.find("t1"), std::string::npos);
  EXPECT_NE(Dot.find("t1 -> t2"), std::string::npos) << Dot;
  EXPECT_NE(Dot.find("neg 0"), std::string::npos);
  EXPECT_NE(Dot.find("#f4cccc"), std::string::npos) << "bug test highlighted";
}

//===----------------------------------------------------------------------===//
// End-to-end: record a real search, then analyze it
//===----------------------------------------------------------------------===//

class TraceEndToEndTest : public ::testing::Test {
protected:
  void SetUp() override {
    App = app::buildKeywordLexer({/*NumKeywords=*/4, /*NumChunks=*/2});
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(App.Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render("lexer");
    Prog = std::move(*Parsed);
    Natives.registerDefaultHashes();
  }

  /// Runs a short higher-order search with a JSONL sink attached and
  /// returns the loaded trace.
  trace::Trace capture(unsigned Jobs = 1) {
    core::SearchOptions Options;
    Options.Policy = dse::ConcretizationPolicy::HigherOrder;
    Options.MaxTests = 24;
    Options.InitialInput = App.identifierInput();
    Options.RandomLo = 32;
    Options.RandomHi = 126;
    Options.SkipCoveredTargets = false;
    Options.Jobs = Jobs;
    Options.ProgressEveryMs = 1;
    std::ostringstream Out;
    {
      telemetry::JsonlTraceSink Sink(Out);
      telemetry::ScopedSink Guard(&Sink);
      core::DirectedSearch Search(Prog, Natives, App.Entry, Options);
      Result = Search.run();
    }
    std::istringstream In(Out.str());
    return trace::loadTrace(In);
  }

  app::LexerApp App;
  lang::Program Prog;
  interp::NativeRegistry Natives;
  core::SearchResult Result;
};

TEST_F(TraceEndToEndTest, RecordedTraceValidatesAndAttributes) {
  trace::Trace T = capture();
  EXPECT_TRUE(T.Errors.empty());
  std::vector<std::string> Problems = trace::validateTrace(T);
  ASSERT_TRUE(Problems.empty())
      << Problems.size() << " problems, first: " << Problems.front();

  trace::Report R = trace::buildReport(T);
  EXPECT_GT(R.Tests, 0u);
  EXPECT_GE(R.Tests, uint64_t(Result.Tests.size()));
  EXPECT_GT(R.SolverChecks, 0u);
  EXPECT_GT(R.ValidityQueries, 0u);
  EXPECT_GT(R.SearchWallNs, 0u);
  // The ISSUE acceptance bar: >= 95% of search wall time lands in spans.
  EXPECT_GE(R.SpanCoverage, 0.95)
      << "only " << R.SpanCoverage * 100 << "% attributed";
  EXPECT_EQ(R.StopReason, "test-budget");
  ASSERT_FALSE(R.SlowQueries.empty());
  EXPECT_GT(R.SlowQueries[0].Ns, 0);
  EXPECT_FALSE(R.Phases.empty());
  EXPECT_EQ(R.Phases[0].Name, "search.run");
}

TEST_F(TraceEndToEndTest, RecordedTraceExportsChromeAndTree) {
  trace::Trace T = capture();
  std::string Chrome = trace::exportChromeTrace(T);
  std::vector<std::string> Problems = trace::validateChromeTrace(Chrome);
  EXPECT_TRUE(Problems.empty())
      << Problems.size() << " problems, first: " << Problems.front();
  EXPECT_NE(Chrome.find("\"search.run\""), std::string::npos);

  std::string Dot = trace::exportSearchTreeDot(T);
  EXPECT_NE(Dot.find("digraph search"), std::string::npos);
  EXPECT_NE(Dot.find("t1"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos)
      << "the search derives tests from tests";
}

TEST_F(TraceEndToEndTest, ParallelTraceValidatesWithWorkerSpans) {
  trace::Trace T = capture(/*Jobs=*/3);
  std::vector<std::string> Problems = trace::validateTrace(T);
  ASSERT_TRUE(Problems.empty())
      << Problems.size() << " problems, first: " << Problems.front();
  bool SawWorkerJob = false;
  for (const trace::TraceEvent &E : T.Events)
    if (E.Kind == "span_begin" &&
        E.Json.getString("name") == "search.worker_job")
      SawWorkerJob = true;
  EXPECT_TRUE(SawWorkerJob);
  // Worker spans root their own per-thread trees.
  trace::SpanForest F = trace::buildSpans(T);
  EXPECT_GT(F.Roots.size(), 1u);
}

} // namespace
