//===- tests/test_smt_portfolio.cpp - Backend factory and tactic racing ----------===//
//
// The ISolver seam (docs/solver.md "Backends and portfolio racing") has
// two contracts these tests pin:
//
//  1. SolverFactory rejects unknown backend/tactic specs with a
//     diagnostic listing the registered vocabulary, and builds the
//     builtin "native" and "portfolio" backends.
//
//  2. The portfolio's determinism contract: every answer it returns —
//     Result, model, Unknown reason — is byte-identical to the native
//     reference, at the direct-query level, under injected lane faults,
//     and across a full 4-policy × jobs {1,4} search sweep. Losing lanes
//     are cancelled and torn down cleanly: once every PortfolioSolver of
//     a shared state is gone, no lane context survives.
//
//===----------------------------------------------------------------------===//

#include "app/Examples.h"
#include "core/Search.h"
#include "lang/Parser.h"
#include "smt/PortfolioSolver.h"
#include "smt/SolverContext.h"
#include "smt/SolverFactory.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace hotg;
using namespace hotg::smt;

namespace {

//===----------------------------------------------------------------------===//
// SolverFactory registry and spec diagnostics
//===----------------------------------------------------------------------===//

bool contains(const std::string &Haystack, const char *Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

TEST(SolverFactory, RegistersBuiltinBackends) {
  SolverFactory &F = SolverFactory::global();
  std::vector<std::string> Names = F.backendNames();
  ASSERT_GE(Names.size(), 2u);
  EXPECT_EQ(Names[0], "native");
  EXPECT_EQ(Names[1], "portfolio");
  EXPECT_TRUE(F.tacticNames("native").empty());
  EXPECT_EQ(F.tacticNames("portfolio"), portfolioTacticNames());
  EXPECT_EQ(portfolioTacticNames().front(), "incremental")
      << "the reference tactic must come first";
}

TEST(SolverFactory, AcceptsValidSpecs) {
  SolverFactory &F = SolverFactory::global();
  EXPECT_EQ(F.validateSpec("native"), "");
  EXPECT_EQ(F.validateSpec("portfolio"), "");
  EXPECT_EQ(F.validateSpec("portfolio:fresh"), "");
  EXPECT_EQ(F.validateSpec("portfolio:incremental,case-split,fresh"), "");
}

TEST(SolverFactory, RejectsUnknownBackendWithVocabulary) {
  std::string Err = SolverFactory::global().validateSpec("z3");
  EXPECT_TRUE(contains(Err, "unknown solver backend 'z3'")) << Err;
  EXPECT_TRUE(contains(Err, "native")) << Err;
  EXPECT_TRUE(contains(Err, "portfolio")) << Err;
}

TEST(SolverFactory, RejectsUnknownTacticWithVocabulary) {
  std::string Err = SolverFactory::global().validateSpec("portfolio:bogus");
  EXPECT_TRUE(contains(Err, "unknown tactic 'bogus'")) << Err;
  EXPECT_TRUE(contains(Err, "incremental")) << Err;
  EXPECT_TRUE(contains(Err, "fresh-case-split")) << Err;
}

TEST(SolverFactory, RejectsTacticListOnNative) {
  std::string Err = SolverFactory::global().validateSpec("native:fresh");
  EXPECT_TRUE(contains(Err, "accepts no tactic list")) << Err;
}

TEST(SolverFactory, RejectsEmptyTacticNames) {
  EXPECT_TRUE(contains(SolverFactory::global().validateSpec("portfolio:"),
                       "empty tactic name"));
  EXPECT_TRUE(
      contains(SolverFactory::global().validateSpec("portfolio:fresh,,fresh"),
               "empty tactic name"));
}

TEST(SolverFactory, CreatesBackendsBehindTheInterface) {
  TermArena Arena;
  SolverOptions Options;
  SolverFactory &F = SolverFactory::global();
  std::unique_ptr<ISolver> Native = F.create("native", Arena, Options);
  ASSERT_TRUE(Native);
  EXPECT_STREQ(Native->backendName(), "native");
  std::unique_ptr<ISolver> Portfolio =
      F.create("portfolio:fresh", Arena, Options);
  ASSERT_TRUE(Portfolio);
  EXPECT_STREQ(Portfolio->backendName(), "portfolio");
  EXPECT_FALSE(F.createSharedState("native"))
      << "native needs no shared state";
  EXPECT_TRUE(F.createSharedState("portfolio"));
}

//===----------------------------------------------------------------------===//
// Direct-query answer identity
//===----------------------------------------------------------------------===//

class PortfolioQueryTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");

  /// A query mix touching every interesting answer shape: Sat with a
  /// model, Unsat, and a UF-constrained Sat.
  std::vector<TermId> queries() {
    FuncId F = Arena.getOrCreateFunc("f", 1);
    TermId FX = Arena.mkUFApp(F, std::vector<TermId>{X});
    return {
        Arena.mkEq(X, Arena.mkIntConst(567)),
        Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(1)),
                    Arena.mkEq(X, Arena.mkIntConst(2))),
        Arena.mkAnd(Arena.mkEq(FX, Arena.mkIntConst(42)),
                    Arena.mkLt(Y, X)),
        Arena.mkOr(Arena.mkEq(X, Arena.mkIntConst(3)),
                   Arena.mkEq(Y, Arena.mkIntConst(4))),
    };
  }

  static void expectSameAnswer(const SatAnswer &A, const SatAnswer &B,
                               const TermArena &Arena, const char *What) {
    EXPECT_EQ(A.Result, B.Result) << What;
    EXPECT_EQ(A.ModelValue.toString(Arena), B.ModelValue.toString(Arena))
        << What;
    EXPECT_EQ(A.Reason, B.Reason) << What;
  }
};

TEST_F(PortfolioQueryTest, CheckFormulaMatchesNative) {
  SolverOptions Options;
  SolverContext Native(Arena, Options);
  PortfolioSolver Portfolio(Arena, Options, {});
  EXPECT_EQ(Portfolio.numTactics(), portfolioTacticNames().size())
      << "an empty tactic list races the full vocabulary";
  for (TermId Q : queries()) {
    SolverStats NS, PS;
    SatAnswer A = Native.checkFormula(Q, NS);
    SatAnswer B = Portfolio.checkFormula(Q, PS);
    expectSameAnswer(A, B, Arena, Arena.toString(Q).c_str());
  }
}

TEST_F(PortfolioQueryTest, AssertedStackCheckMatchesNative) {
  SolverOptions Options;
  SolverContext Native(Arena, Options);
  PortfolioSolver Portfolio(Arena, Options, {});
  TermId Lit1 = Arena.mkLt(Arena.mkIntConst(10), X);
  TermId Lit2 = Arena.mkLt(X, Arena.mkIntConst(20));
  TermId Lit3 = Arena.mkEq(X, Arena.mkIntConst(5));
  for (ISolver *S : {static_cast<ISolver *>(&Native),
                     static_cast<ISolver *>(&Portfolio)}) {
    S->push();
    ASSERT_TRUE(S->assertLiteral(Lit1));
    S->push();
    ASSERT_TRUE(S->assertLiteral(Lit2));
  }
  SolverStats NS, PS;
  expectSameAnswer(Native.check(NS), Portfolio.check(PS), Arena,
                   "10 < x < 20");
  // pop() must restore the pre-push literal sequence on both sides.
  Native.pop();
  Portfolio.pop();
  EXPECT_EQ(Native.numScopes(), Portfolio.numScopes());
  EXPECT_EQ(Native.numAssertedLiterals(), Portfolio.numAssertedLiterals());
  for (ISolver *S : {static_cast<ISolver *>(&Native),
                     static_cast<ISolver *>(&Portfolio)}) {
    S->push();
    ASSERT_TRUE(S->assertLiteral(Lit3));
  }
  SolverStats NS2, PS2;
  expectSameAnswer(Native.check(NS2), Portfolio.check(PS2), Arena,
                   "10 < x && x = 5");
}

TEST_F(PortfolioQueryTest, RetargetMatchesNative) {
  SolverOptions Options;
  SolverContext Native(Arena, Options);
  PortfolioSolver Portfolio(Arena, Options, {});
  std::vector<TermId> Lits = {Arena.mkLt(Arena.mkIntConst(0), X),
                              Arena.mkLt(X, Y),
                              Arena.mkLt(Y, Arena.mkIntConst(10))};
  Native.retarget(Lits);
  Portfolio.retarget(Lits);
  SolverStats NS, PS;
  expectSameAnswer(Native.check(NS), Portfolio.check(PS), Arena,
                   "0 < x < y < 10");
}

TEST_F(PortfolioQueryTest, UnknownAnswersMatchNative) {
  // A budget small enough that the value search gives up: the portfolio
  // must reproduce the reference Unknown (same reason), not a racier
  // lane's. ForceLearningOff lanes never reach a definitive answer the
  // reference would miss, so the race has no winner here.
  SolverOptions Options;
  Options.MaxDecisions = 1;
  FuncId F = Arena.getOrCreateFunc("g", 1);
  TermId FX = Arena.mkUFApp(F, std::vector<TermId>{X});
  TermId FY = Arena.mkUFApp(F, std::vector<TermId>{Y});
  TermId Q = Arena.mkAnd(
      {{Arena.mkEq(FX, Arena.mkIntConst(7)), Arena.mkEq(FY, FX),
        Arena.mkLt(Arena.mkIntConst(100), Arena.mkAdd(X, Y))}});
  SolverContext Native(Arena, Options);
  PortfolioSolver Portfolio(Arena, Options, {});
  SolverStats NS, PS;
  SatAnswer A = Native.checkFormula(Q, NS);
  SatAnswer B = Portfolio.checkFormula(Q, PS);
  expectSameAnswer(A, B, Arena, "budget-starved query");
}

TEST_F(PortfolioQueryTest, SingleTacticSubsetStillMatches) {
  // Naming only a non-reference tactic still prepends the reference lane.
  SolverOptions Options;
  std::vector<TacticConfig> Tactics = {portfolioTacticConfig("fresh")};
  PortfolioSolver Portfolio(Arena, Options, std::move(Tactics));
  EXPECT_EQ(Portfolio.numTactics(), 2u);
  SolverContext Native(Arena, Options);
  for (TermId Q : queries()) {
    SolverStats NS, PS;
    expectSameAnswer(Native.checkFormula(Q, NS), Portfolio.checkFormula(Q, PS),
                     Arena, Arena.toString(Q).c_str());
  }
}

//===----------------------------------------------------------------------===//
// Cancellation teardown
//===----------------------------------------------------------------------===//

TEST(PortfolioTeardown, NoLaneContextSurvivesItsSolvers) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  PortfolioSharedState Shared;
  SolverOptions Options;
  {
    PortfolioSolver A(Arena, Options, {}, &Shared);
    SolverStats QS;
    ASSERT_EQ(A.checkFormula(Arena.mkEq(X, Arena.mkIntConst(1)), QS).Result,
              SatResult::Sat);
    EXPECT_GT(Shared.liveLaneContexts(), 0u)
        << "persistent lanes must keep their contexts between checks";
    {
      // A second instance over the same shared state: lane contexts are
      // per-instance (CtxOwner), so B's checks retire A's contexts but
      // B's own die with B.
      PortfolioSolver B(Arena, Options, {}, &Shared);
      SolverStats QS2;
      TermId Q = Arena.mkLt(X, Arena.mkIntConst(0));
      ASSERT_EQ(B.checkFormula(Q, QS2).Result, SatResult::Sat);
    }
    SolverStats QS3;
    ASSERT_EQ(A.checkFormula(Arena.mkEq(X, Arena.mkIntConst(2)), QS3).Result,
              SatResult::Sat);
  }
  EXPECT_EQ(Shared.liveLaneContexts(), 0u)
      << "teardown must not leak lane contexts";
}

//===----------------------------------------------------------------------===//
// Fault injection inside the race
//===----------------------------------------------------------------------===//

TEST(PortfolioFaults, FaultingLanesLoseWithoutCorruptingAnswers) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  std::vector<TermId> Queries;
  for (int I = 0; I != 12; ++I)
    Queries.push_back(I % 3 == 2
                          ? Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(I)),
                                        Arena.mkEq(X, Arena.mkIntConst(-1)))
                          : Arena.mkEq(X, Arena.mkIntConst(100 + I)));

  // Clean native reference answers first.
  SolverOptions Options;
  std::vector<SatAnswer> Reference;
  {
    SolverContext Native(Arena, Options);
    for (TermId Q : Queries) {
      SolverStats QS;
      Reference.push_back(Native.checkFormula(Q, QS));
    }
  }

  // Now race with solver-check faults armed: each lane probes the site
  // once per check, so some lanes fault and lose. Whenever the portfolio
  // does produce an answer, it must equal the clean reference; when every
  // usable path faulted, the fault propagates (the caller's guarded-retry
  // contract) and we simply retry the same query — determinism makes the
  // eventual answer identical.
  support::FaultInjector Injector;
  Injector.arm(support::FaultSite::SolverCheck, 0.3, 1234);
  support::setFaultInjector(&Injector);
  PortfolioSolver Portfolio(Arena, Options, {});
  size_t Recovered = 0;
  for (size_t I = 0; I != Queries.size(); ++I) {
    for (;;) {
      try {
        SolverStats QS;
        SatAnswer Got = Portfolio.checkFormula(Queries[I], QS);
        EXPECT_EQ(Got.Result, Reference[I].Result) << "query #" << I;
        EXPECT_EQ(Got.ModelValue.toString(Arena),
                  Reference[I].ModelValue.toString(Arena))
            << "query #" << I;
        break;
      } catch (const support::FaultInjected &) {
        ++Recovered; // Reference lane faulted with no usable winner.
      }
    }
  }
  support::setFaultInjector(nullptr);
  EXPECT_GT(Injector.fired(support::FaultSite::SolverCheck), 0u)
      << "the fault site must actually have fired for this test to bite";
  // Post-fault recovery: with the injector gone, broken lanes rebuild and
  // answers still match.
  for (size_t I = 0; I != Queries.size(); ++I) {
    SolverStats QS;
    SatAnswer Got = Portfolio.checkFormula(Queries[I], QS);
    EXPECT_EQ(Got.Result, Reference[I].Result) << "post-fault query #" << I;
  }
  (void)Recovered;
}

TEST(PortfolioFaults, CertainFaultPropagatesAndRecovers) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Q = Arena.mkEq(X, Arena.mkIntConst(9));
  SolverOptions Options;
  PortfolioSolver Portfolio(Arena, Options, {});
  support::FaultInjector Injector;
  Injector.arm(support::FaultSite::SolverCheck, 1.0, 7);
  support::setFaultInjector(&Injector);
  SolverStats QS;
  EXPECT_THROW(Portfolio.checkFormula(Q, QS), support::FaultInjected)
      << "every lane faulting must propagate, like the native backend";
  support::setFaultInjector(nullptr);
  SolverStats QS2;
  EXPECT_EQ(Portfolio.checkFormula(Q, QS2).Result, SatResult::Sat)
      << "the portfolio must recover once the fault is gone";
}

//===----------------------------------------------------------------------===//
// Search-level output identity sweep
//===----------------------------------------------------------------------===//

/// The deterministic output slice of a SearchResult: tests, bugs,
/// coverage, divergences. Per-query work counters are excluded — under
/// the portfolio they are the winner's and thus schedule-descriptive,
/// like CacheHits (docs/solver.md).
void expectSameSearchOutput(const core::SearchResult &A,
                            const core::SearchResult &B, const char *What) {
  ASSERT_EQ(A.Tests.size(), B.Tests.size()) << What;
  for (size_t I = 0; I != A.Tests.size(); ++I) {
    EXPECT_EQ(A.Tests[I].Input.Cells, B.Tests[I].Input.Cells)
        << What << " test #" << I;
    EXPECT_EQ(A.Tests[I].Status, B.Tests[I].Status) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Diverged, B.Tests[I].Diverged) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Intermediate, B.Tests[I].Intermediate)
        << What << " #" << I;
  }
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size()) << What;
  for (size_t I = 0; I != A.Bugs.size(); ++I) {
    EXPECT_EQ(A.Bugs[I].Input.Cells, B.Bugs[I].Input.Cells) << What;
    EXPECT_EQ(A.Bugs[I].Status, B.Bugs[I].Status) << What;
    EXPECT_EQ(A.Bugs[I].Site, B.Bugs[I].Site) << What;
    EXPECT_EQ(A.Bugs[I].FoundAtTest, B.Bugs[I].FoundAtTest) << What;
  }
  EXPECT_TRUE(A.Cov == B.Cov) << What << ": coverage differs";
  EXPECT_EQ(A.Divergences, B.Divergences) << What;
  EXPECT_EQ(A.SolverCalls, B.SolverCalls) << What;
  EXPECT_EQ(A.ValidityCalls, B.ValidityCalls) << What;
  EXPECT_EQ(A.MultiStepRuns, B.MultiStepRuns) << What;
}

class PortfolioSearchSweep
    : public ::testing::TestWithParam<
          std::tuple<dse::ConcretizationPolicy, unsigned>> {};

TEST_P(PortfolioSearchSweep, PortfolioOutputMatchesNativeOnEveryExample) {
  auto [Policy, Jobs] = GetParam();
  for (const app::ExampleProgram &Example : app::allExamples()) {
    lang::Program Prog = app::compileExample(Example);
    interp::NativeRegistry Natives;
    app::registerExampleNatives(Natives);

    auto RunArm = [&, Policy = Policy, Jobs = Jobs](const char *Backend) {
      core::SearchOptions Options;
      Options.Policy = Policy;
      Options.MaxTests = 16;
      Options.Jobs = Jobs;
      Options.InitialInput = Example.InitialInput;
      Options.SkipCoveredTargets = false;
      Options.SolverBackend = Backend;
      core::DirectedSearch Search(Prog, Natives, Example.Entry, Options);
      core::SearchResult Result = Search.run();
      return std::make_pair(std::move(Result), Search.exportSamples());
    };

    auto [Native, NativeSamples] = RunArm("native");
    auto [Portfolio, PortfolioSamples] = RunArm("portfolio");
    expectSameSearchOutput(Native, Portfolio, Example.Name.c_str());
    EXPECT_EQ(NativeSamples, PortfolioSamples)
        << Example.Name << ": learned IOF tables must match";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndJobs, PortfolioSearchSweep,
    ::testing::Combine(
        ::testing::Values(dse::ConcretizationPolicy::Unsound,
                          dse::ConcretizationPolicy::Sound,
                          dse::ConcretizationPolicy::SoundDelayed,
                          dse::ConcretizationPolicy::HigherOrder),
        ::testing::Values(1u, 4u)),
    [](const auto &Info) {
      std::string Name = dse::policyName(std::get<0>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_jobs" + std::to_string(std::get<1>(Info.param));
    });

} // namespace
