//===- tests/test_smt_cc.cpp - Congruence closure unit tests ---------------------===//

#include "smt/CongruenceClosure.h"

#include <gtest/gtest.h>

using namespace hotg::smt;

namespace {

class CCTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId Z = Arena.mkVar("z");
  FuncId H = Arena.getOrCreateFunc("h", 1);
  FuncId G2 = Arena.getOrCreateFunc("g", 2);

  TermId h(TermId T) { return Arena.mkUFApp(H, {{T}}); }
  TermId g(TermId A, TermId B) {
    TermId Args[2] = {A, B};
    return Arena.mkUFApp(G2, Args);
  }
};

TEST_F(CCTest, ReflexiveAndTransitiveEquality) {
  CongruenceClosure CC(Arena);
  CC.addTerm(X);
  EXPECT_TRUE(CC.areEqual(X, X));
  ASSERT_TRUE(CC.assertEqual(X, Y));
  ASSERT_TRUE(CC.assertEqual(Y, Z));
  EXPECT_TRUE(CC.areEqual(X, Z));
  EXPECT_FALSE(CC.inConflict());
}

TEST_F(CCTest, CongruenceUnary) {
  CongruenceClosure CC(Arena);
  TermId HX = h(X), HY = h(Y);
  CC.addTerm(HX);
  CC.addTerm(HY);
  EXPECT_FALSE(CC.areEqual(HX, HY));
  ASSERT_TRUE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.areEqual(HX, HY)) << "x = y must force h(x) = h(y)";
}

TEST_F(CCTest, CongruenceBinaryMixedArgs) {
  CongruenceClosure CC(Arena);
  TermId A = g(X, Z), B = g(Y, Z);
  CC.addTerm(A);
  CC.addTerm(B);
  ASSERT_TRUE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.areEqual(A, B));
}

TEST_F(CCTest, CongruenceChainsThroughNestedApps) {
  CongruenceClosure CC(Arena);
  TermId HHX = h(h(X)), HHY = h(h(Y));
  CC.addTerm(HHX);
  CC.addTerm(HHY);
  ASSERT_TRUE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.areEqual(HHX, HHY));
}

TEST_F(CCTest, DistinctConstantsConflict) {
  CongruenceClosure CC(Arena);
  TermId C1 = Arena.mkIntConst(1), C2 = Arena.mkIntConst(2);
  ASSERT_TRUE(CC.assertEqual(X, C1));
  EXPECT_FALSE(CC.assertEqual(X, C2));
  EXPECT_TRUE(CC.inConflict());
}

TEST_F(CCTest, DisequalityConflict) {
  CongruenceClosure CC(Arena);
  ASSERT_TRUE(CC.assertDistinct(X, Y));
  EXPECT_FALSE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.inConflict());
}

TEST_F(CCTest, DisequalityViaCongruence) {
  CongruenceClosure CC(Arena);
  TermId HX = h(X), HY = h(Y);
  ASSERT_TRUE(CC.assertDistinct(HX, HY));
  // x = y would force h(x) = h(y), contradicting the disequality.
  EXPECT_FALSE(CC.assertEqual(X, Y));
}

TEST_F(CCTest, ConstantPropagationThroughClasses) {
  CongruenceClosure CC(Arena);
  TermId C5 = Arena.mkIntConst(5);
  ASSERT_TRUE(CC.assertEqual(X, Y));
  ASSERT_TRUE(CC.assertEqual(Y, C5));
  auto CX = CC.constantOf(X);
  ASSERT_TRUE(CX.has_value());
  EXPECT_EQ(*CX, 5);
}

TEST_F(CCTest, AreDistinctByConstants) {
  CongruenceClosure CC(Arena);
  TermId C1 = Arena.mkIntConst(1), C2 = Arena.mkIntConst(2);
  ASSERT_TRUE(CC.assertEqual(X, C1));
  ASSERT_TRUE(CC.assertEqual(Y, C2));
  EXPECT_TRUE(CC.areDistinct(X, Y));
  EXPECT_FALSE(CC.areDistinct(X, X));
}

TEST_F(CCTest, SampleEqualityGivesFunctionValue) {
  // h(42) = 567 plus y = 42 must give h(y) = 567 — the congruence step
  // behind Theorem 4's substitution argument.
  CongruenceClosure CC(Arena);
  TermId C42 = Arena.mkIntConst(42), C567 = Arena.mkIntConst(567);
  ASSERT_TRUE(CC.assertEqual(h(C42), C567));
  ASSERT_TRUE(CC.assertEqual(Y, C42));
  auto V = CC.constantOf(h(Y));
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 567);
}

TEST_F(CCTest, AppsAreTracked) {
  CongruenceClosure CC(Arena);
  CC.addTerm(h(X));
  CC.addTerm(g(X, Y));
  CC.addTerm(h(X)); // Duplicate registration is a no-op.
  EXPECT_EQ(CC.apps().size(), 2u);
}

TEST_F(CCTest, OperationsAreCongruentFunctions) {
  // Even interpreted operators participate: x = y forces x+z = y+z.
  CongruenceClosure CC(Arena);
  TermId XZ = Arena.mkAdd(X, Z), YZ = Arena.mkAdd(Y, Z);
  CC.addTerm(XZ);
  CC.addTerm(YZ);
  ASSERT_TRUE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.areEqual(XZ, YZ));
}

} // namespace
