//===- tests/test_smt_persistence.cpp - IOF table serialization -------------------===//

#include "smt/SampleTable.h"

#include <gtest/gtest.h>

using namespace hotg::smt;

namespace {

TEST(SamplePersistence, RoundTrip) {
  TermArena Arena;
  FuncId H = Arena.getOrCreateFunc("hash", 1);
  FuncId H4 = Arena.getOrCreateFunc("hash4", 4);
  SampleTable Original;
  Original.record(H, {42}, 567);
  Original.record(H, {-7}, 0);
  Original.record(H4, {119, 104, 105, 108}, 52);

  std::string Text = Original.serialize(Arena);
  EXPECT_NE(Text.find("hash 1 42 -> 567"), std::string::npos);
  EXPECT_NE(Text.find("hash4 4 119 104 105 108 -> 52"), std::string::npos);

  // Deserializing into a fresh arena re-interns the symbols.
  TermArena Fresh;
  SampleTable Loaded;
  std::string Error;
  ASSERT_TRUE(Loaded.deserialize(Text, Fresh, &Error)) << Error;
  EXPECT_EQ(Loaded.size(), 3u);
  FuncId FreshH = Fresh.getOrCreateFunc("hash", 1);
  auto V = Loaded.lookup(FreshH, {42});
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 567);
  FuncId FreshH4 = Fresh.getOrCreateFunc("hash4", 4);
  EXPECT_EQ(Loaded.lookup(FreshH4, {119, 104, 105, 108}).value_or(-1), 52);
}

TEST(SamplePersistence, CommentsAndBlankLinesAreSkipped) {
  TermArena Arena;
  SampleTable T;
  ASSERT_TRUE(T.deserialize("# saved by hotg-run\n\nhash 1 5 -> 9\n\n",
                            Arena, nullptr));
  EXPECT_EQ(T.size(), 1u);
}

TEST(SamplePersistence, ZeroArityFunctions) {
  TermArena Arena;
  FuncId F = Arena.getOrCreateFunc("getenv_len", 0);
  SampleTable T;
  T.record(F, {}, 12);
  std::string Text = T.serialize(Arena);
  EXPECT_NE(Text.find("getenv_len 0 -> 12"), std::string::npos);

  SampleTable Loaded;
  ASSERT_TRUE(Loaded.deserialize(Text, Arena, nullptr));
  EXPECT_EQ(Loaded.lookup(F, {}).value_or(-1), 12);
}

TEST(SamplePersistence, MalformedInputReportsLine) {
  TermArena Arena;
  SampleTable T;
  std::string Error;
  EXPECT_FALSE(T.deserialize("hash 1 42 -> 5\nbogus line here\n", Arena,
                             &Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos);
  EXPECT_EQ(T.size(), 1u) << "lines before the failure are kept";

  EXPECT_FALSE(T.deserialize("hash 2 1 -> 5\n", Arena, &Error))
      << "arity/field mismatch";
  EXPECT_FALSE(T.deserialize("hash 1 abc -> 5\n", Arena, &Error))
      << "non-numeric argument";
  EXPECT_FALSE(T.deserialize("hash 1 42 => 5\n", Arena, &Error))
      << "missing arrow";
}

TEST(SamplePersistence, NegativeValuesSurvive) {
  TermArena Arena;
  FuncId H = Arena.getOrCreateFunc("h", 2);
  SampleTable T;
  T.record(H, {-9223372036854775807LL, -1}, -42);
  SampleTable Loaded;
  ASSERT_TRUE(Loaded.deserialize(T.serialize(Arena), Arena, nullptr));
  EXPECT_EQ(Loaded.lookup(H, {-9223372036854775807LL, -1}).value_or(0),
            -42);
}

} // namespace
