//===- tests/test_dse_executor.cpp - Symbolic co-executor unit tests --------------===//

#include "dse/SymbolicExecutor.h"

#include "interp/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

class DseTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render();
    Prog = std::move(*Parsed);
    Natives.registerDefaultHashes();
  }

  PathResult exec(std::string_view Entry, std::vector<int64_t> Cells,
                  ConcretizationPolicy Policy,
                  smt::SampleTable *Samples = nullptr) {
    ExecOptions Options;
    Options.Policy = Policy;
    SymbolicExecutor Exec(Prog, Natives, Arena, Options);
    TestInput Input;
    Input.Cells = std::move(Cells);
    return Exec.execute(Entry, Input, Samples);
  }

  lang::Program Prog;
  NativeRegistry Natives;
  smt::TermArena Arena;
};

TEST_F(DseTest, CollectsInputConstraintsAtBranches) {
  compile("fun f(x: int) -> int {\n"
          "  if (x < 10) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {5}, ConcretizationPolicy::Unsound);
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint), "(< x 10)");
  EXPECT_TRUE(PR.PC.Entries[0].Taken);

  PathResult PR2 = exec("f", {50}, ConcretizationPolicy::Unsound);
  ASSERT_EQ(PR2.PC.size(), 1u);
  EXPECT_EQ(Arena.toString(PR2.PC.Entries[0].Constraint), "(>= x 10)");
}

TEST_F(DseTest, ConcreteBranchesAddNoConstraints) {
  compile("fun f(x: int) -> int {\n"
          "  if (1 < 2) { return x; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {5}, ConcretizationPolicy::Unsound);
  EXPECT_TRUE(PR.PC.empty());
  EXPECT_EQ(PR.Run.Trace.size(), 1u) << "the event is still traced";
}

TEST_F(DseTest, SymbolicValuesFlowThroughAssignments) {
  compile("fun f(x: int) -> int {\n"
          "  var t: int = x + 1;\n"
          "  var u: int = t * 3;\n"
          "  if (u == 9) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {0}, ConcretizationPolicy::Unsound);
  ASSERT_EQ(PR.PC.size(), 1u);
  // (x+1)*3 == 9, negated since 3 != 9.
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(distinct (* 3 (+ x 1)) 9)");
}

TEST_F(DseTest, TraceMatchesConcreteInterpreter) {
  compile("fun f(x: int, y: int) -> int {\n"
          "  var i: int = 0;\n"
          "  while (i < y) { i = i + 1; }\n"
          "  if (x == i) { error(\"eq\"); }\n"
          "  return i;\n"
          "}");
  Interpreter Interp(Prog, Natives);
  for (auto Cells : std::vector<std::vector<int64_t>>{
           {3, 3}, {0, 0}, {5, 2}, {-1, 4}}) {
    TestInput Input;
    Input.Cells = Cells;
    RunResult Concrete = Interp.run("f", Input);
    PathResult PR = exec("f", Cells, ConcretizationPolicy::HigherOrder);
    EXPECT_EQ(PR.Run.Trace, Concrete.Trace);
    EXPECT_EQ(PR.Run.Status, Concrete.Status);
    EXPECT_EQ(PR.Run.ReturnValue, Concrete.ReturnValue);
  }
}

TEST_F(DseTest, UnsoundPolicyDropsUnknownCalls) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int, y: int) -> int {\n"
          "  if (x == hash(y)) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {33, 42}, ConcretizationPolicy::Unsound);
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_EQ(PR.NumConcretizations, 1u);
  // hash(y) was replaced by its concrete value.
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(distinct x " + std::to_string(defaultHash1(42)) + ")");
}

TEST_F(DseTest, SoundPolicyInjectsConcretizationConstraints) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int, y: int) -> int {\n"
          "  if (x == hash(y)) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {33, 42}, ConcretizationPolicy::Sound);
  ASSERT_EQ(PR.PC.size(), 2u);
  EXPECT_TRUE(PR.PC.Entries[0].IsConcretization);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint), "(= y 42)");
  EXPECT_FALSE(PR.PC.Entries[1].IsConcretization);
  ASSERT_EQ(PR.PC.negatablePositions(), std::vector<size_t>{1});
}

TEST_F(DseTest, SoundPolicyDoesNotDuplicateConcretizations) {
  compile("extern hash(int) -> int;\n"
          "fun f(y: int) -> int {\n"
          "  if (hash(y) > 0) {\n"
          "    if (hash(y) > 10) { return 2; }\n"
          "    return 1;\n"
          "  }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {42}, ConcretizationPolicy::Sound);
  unsigned NumConcretizationEntries = 0;
  for (const PathEntry &E : PR.PC.Entries)
    NumConcretizationEntries += E.IsConcretization;
  EXPECT_EQ(NumConcretizationEntries, 1u) << "y is fixed once";
}

TEST_F(DseTest, HigherOrderBuildsUFApplications) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int, y: int) -> int {\n"
          "  if (x == hash(y)) { return 1; }\n"
          "  return 0;\n"
          "}");
  smt::SampleTable Samples;
  PathResult PR = exec("f", {33, 42}, ConcretizationPolicy::HigherOrder,
                       &Samples);
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(distinct x (hash y))");
  EXPECT_EQ(PR.NumUFApps, 1u);
  // The IOF table captured hash(42).
  ASSERT_EQ(Samples.size(), 1u);
  auto V = Samples.lookup(Arena.getOrCreateFunc("hash", 1), {42});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, defaultHash1(42));
}

TEST_F(DseTest, HigherOrderRecordsConcreteCallsToo) {
  // Section 7: initialization-style concrete calls must be sampled.
  compile("extern hash(int) -> int;\n"
          "fun f(x: int) -> int {\n"
          "  var kw: int = hash(7);\n"
          "  if (hash(x) == kw) { return 1; }\n"
          "  return 0;\n"
          "}");
  smt::SampleTable Samples;
  PathResult PR = exec("f", {3}, ConcretizationPolicy::HigherOrder,
                       &Samples);
  EXPECT_EQ(Samples.size(), 2u) << "hash(7) and hash(3)";
  EXPECT_EQ(PR.NumUFApps, 1u) << "only hash(x) is symbolic";
}

TEST_F(DseTest, SampleRecordingCanBeDisabled) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int) -> int { return hash(x); }");
  smt::SampleTable Samples;
  ExecOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.RecordSamples = false;
  SymbolicExecutor Exec(Prog, Natives, Arena, Options);
  TestInput Input;
  Input.Cells = {5};
  Exec.execute("f", Input, &Samples);
  EXPECT_TRUE(Samples.empty());
}

TEST_F(DseTest, NonlinearMulBecomesUnknownInstruction) {
  compile("fun f(x: int, y: int) -> int {\n"
          "  if (x * y == 12) { return 1; }\n"
          "  return 0;\n"
          "}");
  smt::SampleTable Samples;
  PathResult PR = exec("f", {3, 4}, ConcretizationPolicy::HigherOrder,
                       &Samples);
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(= (__mul x y) 12)");
  EXPECT_EQ(PR.NumUFApps, 1u);
  auto V = Samples.lookup(Arena.getOrCreateFunc("__mul", 2), {3, 4});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 12);
}

TEST_F(DseTest, MulByConstantStaysLinear) {
  compile("fun f(x: int) -> int {\n"
          "  if (x * 3 == 12) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {4}, ConcretizationPolicy::HigherOrder);
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_EQ(PR.NumUFApps, 0u);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint), "(= (* 3 x) 12)");
}

TEST_F(DseTest, DivisionBecomesUnknownInstruction) {
  compile("fun f(x: int) -> int {\n"
          "  if (x / 3 == 4) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {12}, ConcretizationPolicy::HigherOrder);
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(= (__div x 3) 4)");
}

TEST_F(DseTest, SymbolicArrayIndexConcretizesSoundly) {
  compile("fun f(a: int[4], i: int) -> int {\n"
          "  if (a[i] == 7) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {7, 0, 0, 0, 0}, ConcretizationPolicy::Sound);
  // The injected bounds check comes first, then i is fixed by a
  // concretization constraint; a[0] stays symbolic.
  ASSERT_EQ(PR.PC.size(), 3u);
  EXPECT_TRUE(PR.PC.Entries[0].IsCheck);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(and (>= i 0) (< i 4))");
  EXPECT_TRUE(PR.PC.Entries[1].IsConcretization);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[1].Constraint), "(= i 0)");
  EXPECT_EQ(Arena.toString(PR.PC.Entries[2].Constraint), "(= a[0] 7)");
}

TEST_F(DseTest, DelayedConcretizationInjectsOnlyWhenTested) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int, y: int) -> int {\n"
          "  var t: int = hash(y);\n"
          "  if (y == 10) { return 1; }\n"
          "  if (t == x) { return 2; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {5, 42}, ConcretizationPolicy::SoundDelayed);
  // First branch (y == 10): no concretization needed — y itself is exact.
  // Second branch tests t (concretized hash): y must then be fixed.
  ASSERT_EQ(PR.PC.size(), 3u);
  EXPECT_FALSE(PR.PC.Entries[0].IsConcretization);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint),
            "(distinct y 10)");
  EXPECT_TRUE(PR.PC.Entries[1].IsConcretization);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[1].Constraint), "(= y 42)");
}

TEST_F(DseTest, AlternateConstruction) {
  compile("fun f(x: int) -> int {\n"
          "  if (x > 0) { if (x > 10) { return 2; } return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {5}, ConcretizationPolicy::Unsound);
  ASSERT_EQ(PR.PC.size(), 2u);
  EXPECT_EQ(Arena.toString(PR.PC.alternate(Arena, 1)),
            "(and (> x 0) (> x 10))");
  EXPECT_EQ(Arena.toString(PR.PC.alternate(Arena, 0)), "(<= x 0)");
}

TEST_F(DseTest, BoolInputsBecomeIntegerConstraints) {
  compile("fun f(b: bool) -> int {\n"
          "  if (b) { return 1; }\n"
          "  return 0;\n"
          "}");
  PathResult PR = exec("f", {0}, ConcretizationPolicy::Unsound);
  ASSERT_EQ(PR.PC.size(), 1u);
  EXPECT_EQ(Arena.toString(PR.PC.Entries[0].Constraint), "(= b 0)");
}

TEST_F(DseTest, PathLengthCapTruncates) {
  compile("fun f(n: int) -> int {\n"
          "  var i: int = 0;\n"
          "  while (i < n) { i = i + 1; }\n"
          "  return i;\n"
          "}");
  ExecOptions Options;
  Options.Policy = ConcretizationPolicy::Unsound;
  Options.MaxPathLength = 3;
  SymbolicExecutor Exec(Prog, Natives, Arena, Options);
  TestInput Input;
  Input.Cells = {10};
  PathResult PR = Exec.execute("f", Input);
  EXPECT_EQ(PR.PC.size(), 3u);
  EXPECT_TRUE(PR.PC.Truncated);
  EXPECT_EQ(PR.Run.Status, RunStatus::Ok) << "execution itself completes";
}

} // namespace
