//===- tests/test_lang_parser.cpp - MiniLang parser unit tests --------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::lang;

namespace {

Program parseOk(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  Program Prog = P.parseProgram();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
  return Prog;
}

bool parseFails(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  P.parseProgram();
  return Diags.hasErrors();
}

TEST(LangParser, EmptyProgram) {
  Program Prog = parseOk("");
  EXPECT_TRUE(Prog.Functions.empty());
  EXPECT_TRUE(Prog.Externs.empty());
}

TEST(LangParser, SimpleFunction) {
  Program Prog = parseOk("fun main(x: int) -> int { return x; }");
  ASSERT_EQ(Prog.Functions.size(), 1u);
  const FunctionDecl &F = *Prog.Functions[0];
  EXPECT_EQ(F.Name, "main");
  ASSERT_EQ(F.Params.size(), 1u);
  EXPECT_EQ(F.Params[0].Name, "x");
  EXPECT_TRUE(F.Params[0].ParamType.isInt());
  EXPECT_TRUE(F.ReturnType.isInt());
  ASSERT_EQ(F.Body->Body.size(), 1u);
  EXPECT_EQ(F.Body->Body[0]->Kind, StmtKind::Return);
}

TEST(LangParser, ExternDeclarations) {
  Program Prog = parseOk("extern hash(int) -> int;\n"
                         "extern hash4(int, int, int, int) -> int;\n"
                         "extern tick();");
  ASSERT_EQ(Prog.Externs.size(), 3u);
  EXPECT_EQ(Prog.Externs[0].Name, "hash");
  EXPECT_EQ(Prog.Externs[0].Arity, 1u);
  EXPECT_EQ(Prog.Externs[1].Arity, 4u);
  EXPECT_EQ(Prog.Externs[2].Arity, 0u);
  EXPECT_EQ(Prog.findExtern("hash4"), 1u);
  EXPECT_EQ(Prog.findExtern("nope"), ~0u);
}

TEST(LangParser, ArrayTypesAndIndexing) {
  Program Prog = parseOk("fun f(a: int[8]) -> int {\n"
                         "  a[0] = a[1] + 2;\n"
                         "  return a[7];\n"
                         "}");
  const FunctionDecl &F = *Prog.Functions[0];
  EXPECT_TRUE(F.Params[0].ParamType.isArray());
  EXPECT_EQ(F.Params[0].ParamType.ArraySize, 8u);
  EXPECT_EQ(F.Body->Body[0]->Kind, StmtKind::Assign);
}

TEST(LangParser, OperatorPrecedence) {
  Program Prog = parseOk("fun f(x: int, y: int) -> bool {\n"
                         "  return x + 2 * y < x - 1 || x == y && x != 0;\n"
                         "}");
  // || binds loosest: (cmp) || ((x==y) && (x!=0)).
  const auto &Ret =
      static_cast<const ReturnStmt &>(*Prog.Functions[0]->Body->Body[0]);
  const auto &Or = static_cast<const BinaryExpr &>(*Ret.Value);
  ASSERT_EQ(Or.Op, BinaryOp::Or);
  const auto &Lt = static_cast<const BinaryExpr &>(*Or.Lhs);
  EXPECT_EQ(Lt.Op, BinaryOp::Lt);
  const auto &And = static_cast<const BinaryExpr &>(*Or.Rhs);
  EXPECT_EQ(And.Op, BinaryOp::And);
  // 2 * y binds tighter than +.
  const auto &Plus = static_cast<const BinaryExpr &>(*Lt.Lhs);
  EXPECT_EQ(Plus.Op, BinaryOp::Add);
  EXPECT_EQ(static_cast<const BinaryExpr &>(*Plus.Rhs).Op, BinaryOp::Mul);
}

TEST(LangParser, IfElseChains) {
  Program Prog = parseOk("fun f(x: int) -> int {\n"
                         "  if (x > 0) { return 1; }\n"
                         "  else if (x < 0) { return -1; }\n"
                         "  else { return 0; }\n"
                         "}");
  const auto &If =
      static_cast<const IfStmt &>(*Prog.Functions[0]->Body->Body[0]);
  ASSERT_NE(If.Else, nullptr);
  EXPECT_EQ(If.Else->Kind, StmtKind::If) << "else-if nests as IfStmt";
}

TEST(LangParser, WhileAssertErrorStatements) {
  Program Prog = parseOk("fun f(x: int) {\n"
                         "  while (x > 0) { x = x - 1; }\n"
                         "  assert(x == 0);\n"
                         "  error(\"boom\");\n"
                         "}");
  const auto &Body = Prog.Functions[0]->Body->Body;
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_EQ(Body[0]->Kind, StmtKind::While);
  EXPECT_EQ(Body[1]->Kind, StmtKind::Assert);
  EXPECT_EQ(Body[2]->Kind, StmtKind::Error);
  EXPECT_EQ(static_cast<const ErrorStmt &>(*Body[2]).Message, "boom");
}

TEST(LangParser, CallsAndUnaryOperators) {
  Program Prog = parseOk("fun f(x: int) -> int {\n"
                         "  return -g(x, 1) + h();\n"
                         "}");
  const auto &Ret =
      static_cast<const ReturnStmt &>(*Prog.Functions[0]->Body->Body[0]);
  const auto &Add = static_cast<const BinaryExpr &>(*Ret.Value);
  const auto &Neg = static_cast<const UnaryExpr &>(*Add.Lhs);
  EXPECT_EQ(Neg.Op, UnaryOp::Neg);
  const auto &Call = static_cast<const CallExpr &>(*Neg.Operand);
  EXPECT_EQ(Call.Callee, "g");
  EXPECT_EQ(Call.Args.size(), 2u);
}

TEST(LangParser, VoidFunctionOmitsArrow) {
  Program Prog = parseOk("fun f() { return; }");
  EXPECT_TRUE(Prog.Functions[0]->ReturnType.isVoid());
}

TEST(LangParser, DumpRoundTripsStructure) {
  Program Prog = parseOk("extern hash(int) -> int;\n"
                         "fun f(x: int) -> int {\n"
                         "  var t: int = hash(x);\n"
                         "  if (t == 5) { error(\"e\"); }\n"
                         "  return t;\n"
                         "}");
  std::string Dump = dumpProgram(Prog);
  EXPECT_NE(Dump.find("extern hash(int) -> int;"), std::string::npos);
  EXPECT_NE(Dump.find("var t: int = hash(x);"), std::string::npos);
  EXPECT_NE(Dump.find("if ((t == 5))"), std::string::npos);
}

TEST(LangParser, ErrorRecoveryProducesMultipleDiagnostics) {
  DiagnosticEngine Diags;
  Lexer L("fun f( { } fun g() { return 1 }", Diags);
  Parser P(L.lexAll(), Diags);
  P.parseProgram();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LangParser, RejectsAssignmentToCall) {
  EXPECT_TRUE(parseFails("fun f() { g() = 1; }"));
}

TEST(LangParser, RejectsMissingSemicolon) {
  EXPECT_TRUE(parseFails("fun f() { var x: int = 1 }"));
}

TEST(LangParser, RejectsTopLevelStatements) {
  EXPECT_TRUE(parseFails("var x: int = 1;"));
}

TEST(LangParser, RejectsBadArraySize) {
  EXPECT_TRUE(parseFails("fun f(a: int[0]) {}"));
  EXPECT_TRUE(parseFails("fun f(a: int[-1]) {}"));
}

} // namespace
