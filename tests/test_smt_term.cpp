//===- tests/test_smt_term.cpp - TermArena unit tests ----------------------------===//

#include "smt/Term.h"

#include <gtest/gtest.h>

using namespace hotg::smt;

namespace {

TEST(TermArena, HashConsingDeduplicatesConstants) {
  TermArena Arena;
  EXPECT_EQ(Arena.mkIntConst(42), Arena.mkIntConst(42));
  EXPECT_NE(Arena.mkIntConst(42), Arena.mkIntConst(43));
  EXPECT_EQ(Arena.mkBoolConst(true), Arena.mkTrue());
  EXPECT_NE(Arena.mkTrue(), Arena.mkFalse());
}

TEST(TermArena, HashConsingDeduplicatesCompoundTerms) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId A = Arena.mkAdd(X, Y);
  TermId B = Arena.mkAdd(X, Y);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, Arena.mkAdd(Y, X)) << "operand order is significant";
}

TEST(TermArena, VariablesInternByName) {
  TermArena Arena;
  VarId X1 = Arena.getOrCreateVar("x");
  VarId X2 = Arena.getOrCreateVar("x");
  VarId Y = Arena.getOrCreateVar("y");
  EXPECT_EQ(X1, X2);
  EXPECT_NE(X1, Y);
  EXPECT_EQ(Arena.varName(X1), "x");
  EXPECT_EQ(Arena.numVars(), 2u);
  EXPECT_EQ(Arena.mkVar(X1), Arena.mkVar("x"));
}

TEST(TermArena, FunctionSymbolsInternByName) {
  TermArena Arena;
  FuncId H1 = Arena.getOrCreateFunc("hash", 1);
  FuncId H2 = Arena.getOrCreateFunc("hash", 1);
  FuncId G = Arena.getOrCreateFunc("hash4", 4);
  EXPECT_EQ(H1, H2);
  EXPECT_NE(H1, G);
  EXPECT_EQ(Arena.func(H1).Name, "hash");
  EXPECT_EQ(Arena.func(G).Arity, 4u);
}

TEST(TermArena, UFAppHashConsing) {
  TermArena Arena;
  FuncId H = Arena.getOrCreateFunc("h", 1);
  TermId X = Arena.mkVar("x");
  TermId A1 = Arena.mkUFApp(H, {{X}});
  TermId A2 = Arena.mkUFApp(H, {{X}});
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(Arena.funcIdOf(A1), H);
  EXPECT_EQ(Arena.type(A1), TermType::Int);
}

TEST(TermArena, TypesAreTracked) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  EXPECT_EQ(Arena.type(X), TermType::Int);
  TermId Cmp = Arena.mkLt(X, Arena.mkIntConst(5));
  EXPECT_EQ(Arena.type(Cmp), TermType::Bool);
  TermId Conj = Arena.mkAnd(Cmp, Arena.mkTrue());
  EXPECT_EQ(Arena.type(Conj), TermType::Bool);
}

TEST(TermArena, SingleOperandConnectivesCollapse) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Lit = Arena.mkEq(X, Arena.mkIntConst(1));
  TermId Ops[1] = {Lit};
  EXPECT_EQ(Arena.mkAnd(Ops), Lit);
  EXPECT_EQ(Arena.mkOr(Ops), Lit);
  EXPECT_EQ(Arena.mkAnd({}), Arena.mkTrue());
  EXPECT_EQ(Arena.mkOr({}), Arena.mkFalse());
}

TEST(TermArena, CollectVarsFirstOccurrenceOrder) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId Sum = Arena.mkAdd(Arena.mkAdd(Y, X), Y);
  std::vector<VarId> Vars;
  Arena.collectVars(Sum, Vars);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Arena.varName(Vars[0]), "y");
  EXPECT_EQ(Arena.varName(Vars[1]), "x");
}

TEST(TermArena, CollectAppsFindsNestedApplications) {
  TermArena Arena;
  FuncId H = Arena.getOrCreateFunc("h", 1);
  TermId X = Arena.mkVar("x");
  TermId Inner = Arena.mkUFApp(H, {{X}});
  TermId Outer = Arena.mkUFApp(H, {{Inner}});
  TermId Formula = Arena.mkEq(Outer, Arena.mkIntConst(0));
  std::vector<TermId> Apps;
  Arena.collectApps(Formula, Apps);
  ASSERT_EQ(Apps.size(), 2u);
  EXPECT_TRUE(Arena.containsApp(Formula));
  EXPECT_FALSE(Arena.containsApp(X));
}

TEST(TermArena, ToStringRendersSExpressions) {
  TermArena Arena;
  FuncId H = Arena.getOrCreateFunc("hash", 1);
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId Formula = Arena.mkEq(X, Arena.mkUFApp(H, {{Y}}));
  EXPECT_EQ(Arena.toString(Formula), "(= x (hash y))");
  EXPECT_EQ(Arena.toString(Arena.mkIntConst(-7)), "-7");
  EXPECT_EQ(Arena.toString(Arena.mkTrue()), "true");
}

TEST(TermArena, MulRequiresAConstantOperand) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Three = Arena.mkIntConst(3);
  TermId M = Arena.mkMul(Three, X);
  EXPECT_EQ(Arena.kind(M), TermKind::Mul);
  // mkMul(x, y) with both symbolic would reportFatalError (death test is
  // avoided; the DSE layer guarantees the invariant).
}

TEST(TermArena, OperandAccessors) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId S = Arena.mkSub(X, Y);
  ASSERT_EQ(Arena.operands(S).size(), 2u);
  EXPECT_EQ(Arena.operand(S, 0), X);
  EXPECT_EQ(Arena.operand(S, 1), Y);
}

} // namespace
