//===- tests/test_serve.cpp - hotg-serve daemon units ----------------------------===//
//
// The robustness contracts of the serving layer (docs/serving.md):
//
//  * protocol codec — framing round-trips, bad-frame resync, strict
//    request decoding with structured errors;
//  * hardened JsonReader bounds — depth and document-size limits produce
//    ordinary parse errors, never UB;
//  * admission control — a full gate sheds with structured rejections and
//    nothing is silently dropped (responses == frames, always);
//  * deadline jobs degrade (partial results, `degraded` status);
//  * transiently-failed sessions retry with backoff and then succeed;
//  * a quarantined session never perturbs its neighbors: the surviving
//    jobs' outputs are byte-identical to a fault-free server's;
//  * drain answers every admitted job before returning.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/SessionManager.h"
#include "support/FaultInjector.h"
#include "support/JsonReader.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <thread>

using namespace hotg;
using namespace hotg::serve;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string readExample(const char *Name) {
  std::ifstream In(std::string(HOTG_EXAMPLES_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << Name;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Escapes \p Text as a JSON string body.
std::string jsonEscape(std::string_view Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += {'\\', C};
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

std::string obscureRequest(std::string_view Id, std::string_view Extra = {}) {
  return "{\"id\":\"" + std::string(Id) + "\",\"program\":\"" +
         jsonEscape(readExample("obscure.ml")) +
         "\",\"policy\":\"higher-order\",\"input\":[33,42]" +
         std::string(Extra) + "}";
}

/// One decoded response frame.
struct Decoded {
  std::string Id;
  std::string Status;
  std::string Reason;
  std::string Output;
  int64_t Retries = 0;
  bool Quarantined = false;
};

/// Feeds \p Requests (one frame each) through \p Daemon and decodes every
/// response frame. Order is completion order, so callers index by id.
std::vector<Decoded> runBatch(Server &Daemon,
                              const std::vector<std::string> &Requests,
                              ServerStats *StatsOut = nullptr) {
  std::stringstream In, Out;
  for (const std::string &R : Requests)
    writeFrame(In, R);
  ServerStats Stats = Daemon.serveStream(In, Out);
  if (StatsOut)
    *StatsOut = Stats;

  std::vector<Decoded> Responses;
  std::string Payload, Error;
  for (;;) {
    FrameReadResult Read = readFrame(Out, Payload, Error);
    if (Read == FrameReadResult::Eof)
      break;
    EXPECT_EQ(Read, FrameReadResult::Ok) << Error;
    auto Doc = json::parse(Payload);
    EXPECT_TRUE(Doc) << Doc.error();
    Decoded D;
    D.Id = Doc->getString("id");
    D.Status = Doc->getString("status");
    D.Reason = Doc->getString("reason");
    D.Output = Doc->getString("output");
    D.Retries = Doc->getInt("retries");
    if (const json::Value *Q = Doc->get("quarantined"))
      D.Quarantined = Q->asBool();
    Responses.push_back(std::move(D));
  }
  return Responses;
}

std::map<std::string, Decoded>
byId(const std::vector<Decoded> &Responses) {
  std::map<std::string, Decoded> M;
  for (const Decoded &D : Responses) {
    EXPECT_FALSE(M.count(D.Id)) << "duplicate response for id " << D.Id;
    M[D.Id] = D;
  }
  return M;
}

ServerOptions withWorkers(unsigned Workers) {
  ServerOptions Options;
  Options.Workers = Workers;
  return Options;
}

struct ScopedInjector {
  explicit ScopedInjector(const std::string &Spec) {
    std::string Error;
    Injector = support::FaultInjector::parse(Spec, Error);
    EXPECT_TRUE(Injector) << Error;
    support::setFaultInjector(Injector.get());
  }
  ~ScopedInjector() { support::setFaultInjector(nullptr); }
  std::unique_ptr<support::FaultInjector> Injector;
};

//===----------------------------------------------------------------------===//
// JsonReader hardening (wire input)
//===----------------------------------------------------------------------===//

TEST(JsonLimitsTest, DepthLimitProducesStructuredError) {
  std::string Deep;
  for (int I = 0; I != 10; ++I)
    Deep += "[";
  Deep += "1";
  for (int I = 0; I != 10; ++I)
    Deep += "]";
  json::ParseLimits Limits;
  Limits.MaxDepth = 4;
  auto Doc = json::parse(Deep, Limits);
  ASSERT_FALSE(Doc);
  EXPECT_NE(Doc.error().find("nesting deeper than 4 levels"),
            std::string::npos)
      << Doc.error();
  // The same document parses fine within the limit.
  Limits.MaxDepth = 16;
  EXPECT_TRUE(json::parse(Deep, Limits));
}

TEST(JsonLimitsTest, DepthCountsObjectsAndArraysTogether) {
  json::ParseLimits Limits;
  Limits.MaxDepth = 3;
  EXPECT_TRUE(json::parse(R"({"a":[{"b":1}]})", Limits));
  EXPECT_FALSE(json::parse(R"({"a":[{"b":[1]}]})", Limits));
}

TEST(JsonLimitsTest, DocumentSizeLimitIsCheckedUpFront) {
  json::ParseLimits Limits;
  Limits.MaxDocumentBytes = 8;
  auto Doc = json::parse(R"({"key":"a long document"})", Limits);
  ASSERT_FALSE(Doc);
  EXPECT_NE(Doc.error().find("exceeds limit of"), std::string::npos)
      << Doc.error();
  EXPECT_TRUE(json::parse("1234", Limits));
}

TEST(JsonLimitsTest, DefaultLimitsStayGenerous) {
  std::string Deep;
  for (int I = 0; I != 60; ++I)
    Deep += "[";
  Deep += "1";
  for (int I = 0; I != 60; ++I)
    Deep += "]";
  EXPECT_TRUE(json::parse(Deep));
}

//===----------------------------------------------------------------------===//
// Protocol codec
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, FrameRoundTrip) {
  std::stringstream S;
  writeFrame(S, R"({"id":"a"})");
  writeFrame(S, "");
  std::string Payload, Error;
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Ok);
  EXPECT_EQ(Payload, R"({"id":"a"})");
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Ok);
  EXPECT_EQ(Payload, "");
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Eof);
}

TEST(ServeProtocolTest, BareObjectLinesAndBlankLinesAccepted) {
  std::stringstream S("\n{\"id\":\"x\"}\n\r\n{\"id\":\"y\"}\r\n");
  std::string Payload, Error;
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Ok);
  EXPECT_EQ(Payload, "{\"id\":\"x\"}");
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Ok);
  EXPECT_EQ(Payload, "{\"id\":\"y\"}");
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Eof);
}

TEST(ServeProtocolTest, OversizedFrameIsRejectedAndStreamResyncs) {
  FrameLimits Limits;
  Limits.MaxFrameBytes = 8;
  std::stringstream S("100\nxxx\n{\"a\":1}\n");
  std::string Payload, Error;
  EXPECT_EQ(readFrame(S, Payload, Error, Limits), FrameReadResult::Error);
  EXPECT_NE(Error.find("frame"), std::string::npos) << Error;
}

TEST(ServeProtocolTest, JunkLineErrorsButLaterFramesStillParse) {
  std::stringstream S("not a frame\n{\"id\":\"ok\"}\n");
  std::string Payload, Error;
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Error);
  EXPECT_EQ(readFrame(S, Payload, Error), FrameReadResult::Ok);
  EXPECT_EQ(Payload, "{\"id\":\"ok\"}");
}

TEST(ServeProtocolTest, DecodeFillsDefaultsAndRejectsStructuralErrors) {
  json::ParseLimits Limits;
  JobRequest Req;
  std::string Error;
  ASSERT_TRUE(decodeJobRequest(
      R"({"id":"j","program":"fun main() -> int { return 0; }"})", Limits,
      Req, Error))
      << Error;
  EXPECT_EQ(Req.Policy, "higher-order");
  EXPECT_EQ(Req.Engine, "vm");
  EXPECT_EQ(Req.MaxTests, 64u);
  EXPECT_FALSE(Req.Input.has_value());

  // Missing id.
  EXPECT_FALSE(decodeJobRequest(R"({"program":"x"})", Limits, Req, Error));
  EXPECT_NE(Error.find("id"), std::string::npos);
  // Unknown field (typos must not be silently ignored).
  EXPECT_FALSE(decodeJobRequest(R"({"id":"j","program":"x","polcy":"y"})",
                                Limits, Req, Error));
  EXPECT_NE(Error.find("polcy"), std::string::npos);
  // Wrong type.
  EXPECT_FALSE(decodeJobRequest(R"({"id":"j","program":"x","seed":"y"})",
                                Limits, Req, Error));
  // Out of unsigned range (2^32 + 1 would silently truncate to 1).
  EXPECT_FALSE(decodeJobRequest(
      R"({"id":"j","program":"x","max_tests":4294967297})", Limits, Req,
      Error));
  EXPECT_NE(Error.find("max_tests"), std::string::npos) << Error;
  // Both program and program_path.
  EXPECT_FALSE(decodeJobRequest(
      R"({"id":"j","program":"x","program_path":"y"})", Limits, Req, Error));
  // Neither.
  EXPECT_FALSE(decodeJobRequest(R"({"id":"j"})", Limits, Req, Error));
  // Not an object.
  EXPECT_FALSE(decodeJobRequest(R"([1,2])", Limits, Req, Error));
  // Id survives decode failures for correlation.
  EXPECT_FALSE(decodeJobRequest(R"({"id":"keep","program":"x","jobs":0})",
                                Limits, Req, Error));
  EXPECT_EQ(Req.Id, "keep");
}

TEST(ServeProtocolTest, EncodeResponseCarriesTaxonomy) {
  JobResponse Resp;
  Resp.Id = "j1";
  Resp.Status = JobStatus::Degraded;
  Resp.Tests = 7;
  Resp.Output = "line\n";
  std::string Encoded = encodeJobResponse(Resp);
  auto Doc = json::parse(Encoded);
  ASSERT_TRUE(Doc) << Doc.error();
  EXPECT_EQ(Doc->getString("status"), "degraded");
  EXPECT_EQ(Doc->getInt("tests"), 7);
  EXPECT_EQ(Doc->getString("output"), "line\n");

  Resp.Status = JobStatus::Rejected;
  Resp.Reason = "queue full";
  Doc = json::parse(encodeJobResponse(Resp));
  ASSERT_TRUE(Doc) << Doc.error();
  EXPECT_EQ(Doc->getString("status"), "rejected");
  EXPECT_EQ(Doc->getString("reason"), "queue full");
  // Rejected responses carry no search fields.
  EXPECT_EQ(Doc->get("tests"), nullptr);
}

//===----------------------------------------------------------------------===//
// Sessions: validation, status taxonomy, epochs
//===----------------------------------------------------------------------===//

TEST(ServeSessionTest, InvalidJobsAreRejectedNotFatal) {
  Server Daemon(withWorkers(1));
  auto ById = byId(runBatch(
      Daemon, {
                  "{\"id\":\"bad-policy\",\"program\":\"fun main() -> int "
                  "{ return 0; }\",\"policy\":\"bogus\"}",
                  "{\"id\":\"bad-parse\",\"program\":\"fun fun\"}",
                  "{\"id\":\"bad-entry\",\"program\":\"fun main() -> int "
                  "{ return 0; }\",\"entry\":\"nope\"}",
                  "{\"id\":\"bad-path\",\"program_path\":\"../etc\"}",
                  "{\"id\":\"bad-arity\",\"program\":\"fun main(x: int) -> "
                  "int { return x; }\",\"input\":[1,2]}",
                  obscureRequest("survivor"),
              }));
  ASSERT_EQ(ById.size(), 6u);
  for (const char *Id :
       {"bad-policy", "bad-parse", "bad-entry", "bad-path", "bad-arity"}) {
    EXPECT_EQ(ById[Id].Status, "rejected") << Id;
    EXPECT_FALSE(ById[Id].Reason.empty()) << Id;
  }
  // A malformed neighbor never poisons a valid job.
  EXPECT_EQ(ById["survivor"].Status, "bugs");
}

TEST(ServeSessionTest, StatusesMapTheExitCodeContract) {
  Server Daemon(withWorkers(1));
  auto ById = byId(runBatch(
      Daemon,
      {
          obscureRequest("finds-bugs"),
          "{\"id\":\"clean\",\"program\":\"fun main(x: int) -> int { if "
          "(x > 3) { return 1; } return 0; }\",\"policy\":\"unsound\"}",
      }));
  EXPECT_EQ(ById["finds-bugs"].Status, "bugs");
  EXPECT_NE(ById["finds-bugs"].Output.find("BUG [error]"),
            std::string::npos);
  EXPECT_EQ(ById["clean"].Status, "ok");
  EXPECT_NE(ById["clean"].Output.find("no bugs found"), std::string::npos);
}

TEST(ServeSessionTest, DeadlineJobsDegradeWithPartialResults) {
  Server Daemon(withWorkers(1));
  std::string Req = "{\"id\":\"slow\",\"program\":\"" +
                    jsonEscape(readExample("lexer.ml")) +
                    "\",\"entry\":\"lex_main\",\"explore_paths\":true,"
                    "\"max_tests\":2000,\"deadline_ms\":1}";
  auto ById = byId(runBatch(Daemon, {Req}));
  ASSERT_EQ(ById.size(), 1u);
  EXPECT_EQ(ById["slow"].Status, "degraded");
  EXPECT_NE(ById["slow"].Output.find("search stopped:"), std::string::npos)
      << ById["slow"].Output;
}

TEST(ServeSessionTest, EpochSharesAcrossJobsValuesButNotConfigs) {
  SharedFabric Fabric;
  SessionManager Sessions(Fabric, {});
  JobRequest A;
  A.Id = "a";
  A.Program = "fun main() -> int { return 0; }";
  const std::string Src = A.Program;
  JobRequest B = A;
  B.Id = "b";
  B.Tenant = "other";
  B.Jobs = 4; // Jobs and identity fields never split an epoch.
  EXPECT_EQ(Sessions.epochFor(A, Src, "", 0), Sessions.epochFor(B, Src, "", 0));
  B.Seed = 7; // Anything that changes the query stream does.
  EXPECT_NE(Sessions.epochFor(A, Src, "", 0), Sessions.epochFor(B, Src, "", 0));
  EXPECT_NE(Sessions.epochFor(A, Src, "", 0),
            Sessions.epochFor(A, Src, "samples", 0));
  // The epoch digests the program text the session actually runs, never
  // the path it was named by: an edited file under --program-root splits
  // the epoch, and a path spelling alone never does.
  EXPECT_NE(Sessions.epochFor(A, Src, "", 0),
            Sessions.epochFor(A, "fun main() -> int { return 1; }", "", 0));
  JobRequest ByPath = A;
  ByPath.Program.clear();
  ByPath.ProgramPath = "some/dir/main.ml";
  EXPECT_EQ(Sessions.epochFor(A, Src, "", 0),
            Sessions.epochFor(ByPath, Src, "", 0));
  // Deadline-armed jobs never share an epoch, not even with themselves.
  EXPECT_NE(Sessions.epochFor(A, Src, "", 5), Sessions.epochFor(A, Src, "", 5));
}

TEST(ServeSessionTest, CrossSessionCacheServesRepeatJobs) {
  Server Daemon(withWorkers(1));
  auto First = byId(runBatch(Daemon, {obscureRequest("r1")}));
  uint64_t MissesAfterFirst = Daemon.fabric().cache().misses();
  EXPECT_GT(MissesAfterFirst, 0u); // Cold cache: the first session misses.
  auto Second = byId(runBatch(Daemon, {obscureRequest("r2")}));
  EXPECT_GT(Daemon.fabric().cache().hits(), 0u);
  // Sharing never changes results: identical report bytes.
  EXPECT_EQ(First["r1"].Output, Second["r2"].Output);
  EXPECT_EQ(First["r1"].Status, "bugs");
  EXPECT_EQ(Second["r2"].Status, "bugs");
}

TEST(ServeSessionTest, ShareSamplesPublishesOneTablePerFamily) {
  Server Daemon(withWorkers(1));
  std::string Req = obscureRequest("s1", ",\"share_samples\":true");
  auto R1 = byId(runBatch(Daemon, {Req}));
  EXPECT_EQ(R1["s1"].Status, "bugs");
  EXPECT_EQ(Daemon.fabric().sampleTables(), 1u);
  // A second job of the same family warm-starts and re-publishes into the
  // same slot — still one table.
  std::string Req2 = obscureRequest("s2", ",\"share_samples\":true");
  auto R2 = byId(runBatch(Daemon, {Req2}));
  EXPECT_EQ(R2["s2"].Status, "bugs");
  EXPECT_EQ(Daemon.fabric().sampleTables(), 1u);
}

//===----------------------------------------------------------------------===//
// Admission control / backpressure
//===----------------------------------------------------------------------===//

TEST(ServeAdmissionTest, GateBoundsAndReleases) {
  AdmissionGate Gate(2);
  EXPECT_TRUE(Gate.tryAcquire());
  EXPECT_TRUE(Gate.tryAcquire());
  EXPECT_FALSE(Gate.tryAcquire());
  Gate.release();
  EXPECT_TRUE(Gate.tryAcquire());
  EXPECT_EQ(Gate.capacity(), 2u);
}

TEST(ServeAdmissionTest, RetryBackoffIsBoundedAndExponential) {
  RetryPolicy Retry;
  Retry.BaseBackoffMs = 10;
  Retry.MaxBackoffMs = 35;
  EXPECT_EQ(Retry.backoffMs(0), 10u);
  EXPECT_EQ(Retry.backoffMs(1), 20u);
  EXPECT_EQ(Retry.backoffMs(2), 35u); // Capped.
  EXPECT_EQ(Retry.backoffMs(9), 35u);
}

TEST(ServeAdmissionTest, OverloadShedsWithStructuredRejections) {
  ServerOptions Options;
  Options.Workers = 1;
  Options.QueueCapacity = 1;
  Server Daemon(Options);
  std::vector<std::string> Batch;
  for (int I = 0; I != 6; ++I)
    Batch.push_back(obscureRequest("job" + std::to_string(I)));
  ServerStats Stats;
  auto Responses = runBatch(Daemon, Batch, &Stats);

  // The zero-silent-drops invariant: every frame got exactly one answer.
  EXPECT_EQ(Stats.FramesRead, 6u);
  EXPECT_EQ(Stats.Responses, 6u);
  EXPECT_EQ(Stats.Admitted + Stats.Shed, 6u);
  EXPECT_GE(Stats.Shed, 1u) << "capacity-1 gate never shed under 6x load";

  unsigned Shed = 0, Succeeded = 0;
  for (const Decoded &D : Responses) {
    if (D.Status == "rejected") {
      EXPECT_NE(D.Reason.find("queue full"), std::string::npos) << D.Reason;
      ++Shed;
    } else {
      EXPECT_EQ(D.Status, "bugs");
      ++Succeeded;
    }
  }
  EXPECT_EQ(Shed, Stats.Shed);
  EXPECT_EQ(Succeeded, Stats.Admitted);
}

//===----------------------------------------------------------------------===//
// Fault containment: retry, quarantine, decode faults
//===----------------------------------------------------------------------===//

TEST(ServeFaultTest, TransientSpawnFaultRetriesThenSucceeds) {
  // Seed 3 at p=0.5 fires the first session-spawn probe and spares the
  // second (the decision is a pure function of (seed, site, probe index),
  // see test_support_faults), so the one job fails once and then succeeds
  // on its first retry.
  {
    std::string Error;
    auto Probe =
        support::FaultInjector::parse("serve.session-spawn:0.5:3", Error);
    ASSERT_TRUE(Probe) << Error;
    ASSERT_TRUE(Probe->shouldFail(support::FaultSite::SessionSpawn));
    ASSERT_FALSE(Probe->shouldFail(support::FaultSite::SessionSpawn));
  }
  ScopedInjector Injector("serve.session-spawn:0.5:3");
  ServerOptions Options;
  Options.Workers = 1;
  Options.Session.Retry.BaseBackoffMs = 1;
  Server Daemon(Options);
  auto ById = byId(runBatch(Daemon, {obscureRequest("retry")}));
  ASSERT_EQ(ById.size(), 1u);
  EXPECT_EQ(ById["retry"].Status, "bugs");
  EXPECT_GE(ById["retry"].Retries, 1);
  EXPECT_FALSE(ById["retry"].Quarantined);
}

TEST(ServeFaultTest, ExhaustedRetriesQuarantineWithStructuredError) {
  ScopedInjector Injector("serve.session-spawn:1.0:1");
  ServerOptions Options;
  Options.Workers = 1;
  Options.Session.Retry.MaxRetries = 2;
  Options.Session.Retry.BaseBackoffMs = 1;
  Server Daemon(Options);
  auto ById = byId(runBatch(Daemon, {obscureRequest("doomed")}));
  ASSERT_EQ(ById.size(), 1u);
  EXPECT_EQ(ById["doomed"].Status, "error");
  EXPECT_TRUE(ById["doomed"].Quarantined);
  EXPECT_EQ(ById["doomed"].Retries, 2);
  EXPECT_NE(ById["doomed"].Reason.find("injected"), std::string::npos)
      << ById["doomed"].Reason;
}

TEST(ServeFaultTest, QuarantinedSessionLeavesNeighborsByteIdentical) {
  // Fault-free reference pass.
  std::vector<std::string> Batch = {obscureRequest("q1"),
                                    obscureRequest("q2"),
                                    obscureRequest("q3")};
  std::map<std::string, Decoded> Clean;
  {
    Server Daemon(withWorkers(1));
    Clean = byId(runBatch(Daemon, Batch));
  }
  // Faulted pass: p=1 on the first spawn probe only is impossible with a
  // stationary probability, so instead quarantine deterministically via
  // retries=0 and a seed whose probe pattern hits at least one job.
  ScopedInjector Injector("serve.session-spawn:0.5:3");
  ServerOptions Options;
  Options.Workers = 1;
  Options.Session.Retry.MaxRetries = 0;
  Server Daemon(Options);
  auto Faulted = byId(runBatch(Daemon, Batch));
  ASSERT_EQ(Faulted.size(), 3u);
  unsigned Quarantined = 0;
  for (const auto &[Id, D] : Faulted) {
    if (D.Quarantined) {
      EXPECT_EQ(D.Status, "error");
      ++Quarantined;
    } else {
      // The surviving sessions' reports are byte-identical to the clean
      // server's — a faulted neighbor perturbed nothing.
      EXPECT_EQ(D.Status, Clean[Id].Status) << Id;
      EXPECT_EQ(D.Output, Clean[Id].Output) << Id;
    }
  }
  EXPECT_GE(Quarantined, 1u) << "seed no longer fires; pick a new one";
  EXPECT_LT(Quarantined, 3u) << "need at least one survivor";
}

TEST(ServeFaultTest, DecodeFaultRejectsFrameAndKeepsServing) {
  ScopedInjector Injector("serve.job-decode:0.5:3");
  Server Daemon(withWorkers(1));
  std::vector<std::string> Batch = {obscureRequest("d1"),
                                    obscureRequest("d2"),
                                    obscureRequest("d3")};
  ServerStats Stats;
  auto Responses = runBatch(Daemon, Batch, &Stats);
  EXPECT_EQ(Stats.Responses, 3u);
  unsigned Rejected = 0;
  for (const Decoded &D : Responses)
    if (D.Status == "rejected") {
      EXPECT_NE(D.Reason.find("injected"), std::string::npos) << D.Reason;
      ++Rejected;
    } else {
      EXPECT_EQ(D.Status, "bugs");
    }
  EXPECT_GE(Rejected, 1u);
  EXPECT_LT(Rejected, 3u);
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

TEST(ServeDrainTest, DrainAnswersEverythingAdmitted) {
  ServerOptions Options;
  Options.Workers = 2;
  Server Daemon(Options);
  std::stringstream In, Out;
  for (int I = 0; I != 4; ++I)
    writeFrame(In, obscureRequest("drain" + std::to_string(I)));

  // Request the drain concurrently with serving; wherever the frame loop
  // is when the flag lands, the invariant is the same: every frame read
  // got answered before serveStream returned.
  std::thread Stopper([&Daemon] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Daemon.requestDrain();
  });
  ServerStats Stats = Daemon.serveStream(In, Out);
  Stopper.join();
  EXPECT_EQ(Stats.Responses, Stats.FramesRead);
  EXPECT_EQ(Stats.Admitted + Stats.Shed + Stats.RejectedMalformed,
            Stats.FramesRead);

  std::string Payload, Error;
  unsigned Frames = 0;
  while (readFrame(Out, Payload, Error) == FrameReadResult::Ok)
    ++Frames;
  EXPECT_EQ(Frames, Stats.Responses);
}

TEST(ServeDrainTest, DrainBeforeServingReadsNothing) {
  Server Daemon(withWorkers(1));
  Daemon.requestDrain();
  std::stringstream In, Out;
  writeFrame(In, obscureRequest("never"));
  ServerStats Stats = Daemon.serveStream(In, Out);
  EXPECT_TRUE(Stats.Drained);
  EXPECT_EQ(Stats.FramesRead, 0u);
  EXPECT_EQ(Stats.Responses, 0u);
}

} // namespace
