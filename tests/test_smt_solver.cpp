//===- tests/test_smt_solver.cpp - Satisfiability solver unit + property tests ----===//

#include "smt/Solver.h"

#include "smt/Simplify.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::smt;

namespace {

class SolverTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId Z = Arena.mkVar("z");

  SatAnswer check(TermId F, const SampleTable *Samples = nullptr) {
    SolverOptions Options;
    Options.Samples = Samples;
    Solver S(Arena, Options);
    SatAnswer Answer = S.check(F);
    if (Answer.isSat()) {
      // Every SAT answer must verify (model-soundness invariant).
      EXPECT_TRUE(Answer.ModelValue.evalBool(Arena, F))
          << "model does not satisfy " << Arena.toString(F);
    }
    return Answer;
  }
};

TEST_F(SolverTest, TrivialConstants) {
  EXPECT_EQ(check(Arena.mkTrue()).Result, SatResult::Sat);
  EXPECT_EQ(check(Arena.mkFalse()).Result, SatResult::Unsat);
}

TEST_F(SolverTest, SimpleEquality) {
  SatAnswer A = check(Arena.mkEq(X, Arena.mkIntConst(567)));
  ASSERT_TRUE(A.isSat());
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0), 567);
}

TEST_F(SolverTest, ContradictionIsUnsat) {
  TermId F = Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(1)),
                         Arena.mkEq(X, Arena.mkIntConst(2)));
  EXPECT_EQ(check(F).Result, SatResult::Unsat);
}

TEST_F(SolverTest, PaperExampleOneAlternate) {
  // Example 1's alternate constraint y = 42 ∧ x = 567 ∧ y = 10 is UNSAT.
  TermId F = Arena.mkAnd(
      {{Arena.mkEq(Y, Arena.mkIntConst(42)),
        Arena.mkEq(X, Arena.mkIntConst(567)),
        Arena.mkEq(Y, Arena.mkIntConst(10))}});
  EXPECT_EQ(check(F).Result, SatResult::Unsat);
}

TEST_F(SolverTest, InequalityChain) {
  // 3 <= x < y <= 5 forces x=3..4, y=4..5.
  TermId F = Arena.mkAnd(
      {{Arena.mkLe(Arena.mkIntConst(3), X), Arena.mkLt(X, Y),
        Arena.mkLe(Y, Arena.mkIntConst(5))}});
  SatAnswer A = check(F);
  ASSERT_TRUE(A.isSat());
}

TEST_F(SolverTest, EmptyIntervalChainIsUnsat) {
  // x < y ∧ y < x.
  TermId F = Arena.mkAnd(Arena.mkLt(X, Y), Arena.mkLt(Y, X));
  EXPECT_EQ(check(F).Result, SatResult::Unsat);
}

TEST_F(SolverTest, LinearCombination) {
  // x + y = 10 ∧ x - y = 4 → x = 7, y = 3.
  TermId F = Arena.mkAnd(
      Arena.mkEq(Arena.mkAdd(X, Y), Arena.mkIntConst(10)),
      Arena.mkEq(Arena.mkSub(X, Y), Arena.mkIntConst(4)));
  SatAnswer A = check(F);
  ASSERT_TRUE(A.isSat());
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0), 7);
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("y"), 0), 3);
}

TEST_F(SolverTest, ScaledCoefficients) {
  // 3x = 7 has no integer solution.
  TermId F = Arena.mkEq(Arena.mkMul(Arena.mkIntConst(3), X),
                        Arena.mkIntConst(7));
  EXPECT_EQ(check(F).Result, SatResult::Unsat);
  // 3x = 9 does.
  TermId G = Arena.mkEq(Arena.mkMul(Arena.mkIntConst(3), X),
                        Arena.mkIntConst(9));
  SatAnswer A = check(G);
  ASSERT_TRUE(A.isSat());
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0), 3);
}

TEST_F(SolverTest, DisequalityForcesOtherValue) {
  // 0 <= x <= 1 ∧ x ≠ 0 → x = 1.
  TermId F = Arena.mkAnd(
      {{Arena.mkLe(Arena.mkIntConst(0), X),
        Arena.mkLe(X, Arena.mkIntConst(1)),
        Arena.mkNe(X, Arena.mkIntConst(0))}});
  SatAnswer A = check(F);
  ASSERT_TRUE(A.isSat());
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1), 1);
}

TEST_F(SolverTest, FiniteDomainExhaustionIsUnsat) {
  // 0 <= x <= 2 ∧ x ≠ 0 ∧ x ≠ 1 ∧ x ≠ 2.
  TermId F = Arena.mkAnd(
      {{Arena.mkLe(Arena.mkIntConst(0), X),
        Arena.mkLe(X, Arena.mkIntConst(2)),
        Arena.mkNe(X, Arena.mkIntConst(0)),
        Arena.mkNe(X, Arena.mkIntConst(1)),
        Arena.mkNe(X, Arena.mkIntConst(2))}});
  EXPECT_EQ(check(F).Result, SatResult::Unsat);
}

TEST_F(SolverTest, DisjunctionPicksSatisfiableBranch) {
  // (x = 1 ∧ x = 2) ∨ x = 5.
  TermId F = Arena.mkOr(
      Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(1)),
                  Arena.mkEq(X, Arena.mkIntConst(2))),
      Arena.mkEq(X, Arena.mkIntConst(5)));
  SatAnswer A = check(F);
  ASSERT_TRUE(A.isSat());
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0), 5);
}

TEST_F(SolverTest, NegationViaNNF) {
  // ¬(x < 5 ∨ x > 10) ≡ 5 <= x <= 10.
  TermId F = Arena.mkNot(Arena.mkOr(Arena.mkLt(X, Arena.mkIntConst(5)),
                                    Arena.mkGt(X, Arena.mkIntConst(10))));
  SatAnswer A = check(F);
  ASSERT_TRUE(A.isSat());
  int64_t V = A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), -1);
  EXPECT_GE(V, 5);
  EXPECT_LE(V, 10);
}

TEST_F(SolverTest, UFCongruenceConflict) {
  // x = y ∧ h(x) ≠ h(y) is UNSAT by congruence.
  FuncId H = Arena.getOrCreateFunc("h", 1);
  TermId HX = Arena.mkUFApp(H, {{X}});
  TermId HY = Arena.mkUFApp(H, {{Y}});
  TermId F = Arena.mkAnd(Arena.mkEq(X, Y), Arena.mkNe(HX, HY));
  SatAnswer A = check(F);
  EXPECT_NE(A.Result, SatResult::Sat)
      << "congruence violation must not be satisfiable";
}

TEST_F(SolverTest, UFFreeChoiceIsSat) {
  // h(x) = 5 is satisfiable: the solver invents an interpretation.
  FuncId H = Arena.getOrCreateFunc("h", 1);
  TermId F = Arena.mkEq(Arena.mkUFApp(H, {{X}}), Arena.mkIntConst(5));
  SatAnswer A = check(F);
  ASSERT_TRUE(A.isSat());
}

TEST_F(SolverTest, SamplesConstrainFunctions) {
  // With sample h(42) = 567: h(y) = 567 ∧ y = 42 is SAT, while
  // h(y) = 111 ∧ y = 42 is not satisfiable consistently with the table.
  SampleTable Samples;
  FuncId H = Arena.getOrCreateFunc("h", 1);
  Samples.record(H, {42}, 567);

  TermId HY = Arena.mkUFApp(H, {{Y}});
  TermId Sat = Arena.mkAnd(Arena.mkEq(HY, Arena.mkIntConst(567)),
                           Arena.mkEq(Y, Arena.mkIntConst(42)));
  EXPECT_TRUE(check(Sat, &Samples).isSat());

  TermId Unsat = Arena.mkAnd(Arena.mkEq(HY, Arena.mkIntConst(111)),
                             Arena.mkEq(Y, Arena.mkIntConst(42)));
  EXPECT_NE(check(Unsat, &Samples).Result, SatResult::Sat);
}

TEST_F(SolverTest, SampleGuidedInversion) {
  // The Section 7 pattern: h(x) = 567 with a sample h(42) = 567 should be
  // solved by steering x to the sampled argument.
  SampleTable Samples;
  FuncId H = Arena.getOrCreateFunc("h", 1);
  Samples.record(H, {42}, 567);
  Samples.record(H, {7}, 99);

  TermId F = Arena.mkEq(Arena.mkUFApp(H, {{X}}), Arena.mkIntConst(567));
  SatAnswer A = check(F, &Samples);
  ASSERT_TRUE(A.isSat());
}

TEST_F(SolverTest, ThreeVariableSystem) {
  // x + y + z = 6 ∧ x = y ∧ y = z → all 2.
  TermId Sum = Arena.mkAdd({{X, Y, Z}});
  TermId F = Arena.mkAnd(
      {{Arena.mkEq(Sum, Arena.mkIntConst(6)), Arena.mkEq(X, Y),
        Arena.mkEq(Y, Z)}});
  SatAnswer A = check(F);
  ASSERT_TRUE(A.isSat());
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0), 2);
}

TEST_F(SolverTest, StatsArePopulated) {
  Solver S(Arena);
  TermId F = Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(1)),
                         Arena.mkLt(Y, X));
  SatAnswer A = S.check(F);
  ASSERT_TRUE(A.isSat());
  EXPECT_GE(S.stats().SupportsExplored, 1u);
  EXPECT_GE(S.stats().Propagations, 1u);
}

//===----------------------------------------------------------------------===//
// Property sweep: random conjunctions of linear literals built around a
// known witness are always found satisfiable with a verified model.
//===----------------------------------------------------------------------===//

class SolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverPropertyTest, PlantedWitnessAlwaysFound) {
  RandomGen Rng(GetParam());
  TermArena Arena;
  const unsigned NumVars = 4;
  std::vector<TermId> Vars;
  std::vector<int64_t> Witness;
  for (unsigned I = 0; I != NumVars; ++I) {
    Vars.push_back(Arena.mkVar("v" + std::to_string(I)));
    Witness.push_back(Rng.nextInRange(-50, 50));
  }

  for (int Round = 0; Round != 30; ++Round) {
    std::vector<TermId> Literals;
    unsigned NumLits = 1 + static_cast<unsigned>(Rng.nextBelow(5));
    for (unsigned L = 0; L != NumLits; ++L) {
      // Random linear expression over the witness.
      int64_t Constant = 0;
      std::vector<TermId> Summands;
      for (unsigned V = 0; V != NumVars; ++V) {
        int64_t Coeff = Rng.nextInRange(-3, 3);
        if (Coeff == 0)
          continue;
        Summands.push_back(
            Arena.mkMul(Arena.mkIntConst(Coeff), Vars[V]));
        Constant += Coeff * Witness[V];
      }
      if (Summands.empty())
        Summands.push_back(Arena.mkIntConst(0));
      TermId Lhs = Arena.mkAdd(Summands);
      // Pick a relation that the witness satisfies.
      switch (Rng.nextBelow(3)) {
      case 0:
        Literals.push_back(Arena.mkEq(Lhs, Arena.mkIntConst(Constant)));
        break;
      case 1:
        Literals.push_back(Arena.mkLe(
            Lhs, Arena.mkIntConst(Constant +
                                  static_cast<int64_t>(Rng.nextBelow(5)))));
        break;
      default:
        Literals.push_back(Arena.mkGe(
            Lhs, Arena.mkIntConst(Constant -
                                  static_cast<int64_t>(Rng.nextBelow(5)))));
        break;
      }
    }
    TermId F = Arena.mkAnd(Literals);
    Solver S(Arena);
    SatAnswer A = S.check(F);
    // Refutation soundness: a formula with a planted witness must never be
    // declared UNSAT. (Dense underdetermined systems may honestly return
    // Unknown — the solver's completeness envelope is the simple fragment
    // exercised below.)
    ASSERT_NE(A.Result, SatResult::Unsat)
        << "refuted a satisfiable formula: " << Arena.toString(F);
    if (A.isSat())
      ASSERT_TRUE(A.ModelValue.evalBool(Arena, F))
          << "unverified model for " << Arena.toString(F);
  }
}

TEST_P(SolverPropertyTest, SimpleFragmentIsComplete) {
  // The fragment dynamic symbolic execution actually produces: literals
  // over at most two variables with unit coefficients. Here SAT answers
  // are required, not just allowed.
  RandomGen Rng(GetParam());
  TermArena Arena;
  const unsigned NumVars = 4;
  std::vector<TermId> Vars;
  std::vector<int64_t> Witness;
  for (unsigned I = 0; I != NumVars; ++I) {
    Vars.push_back(Arena.mkVar("w" + std::to_string(I)));
    Witness.push_back(Rng.nextInRange(-100, 100));
  }

  for (int Round = 0; Round != 40; ++Round) {
    std::vector<TermId> Literals;
    unsigned NumLits = 1 + static_cast<unsigned>(Rng.nextBelow(6));
    for (unsigned L = 0; L != NumLits; ++L) {
      unsigned A = static_cast<unsigned>(Rng.nextBelow(NumVars));
      unsigned B = static_cast<unsigned>(Rng.nextBelow(NumVars));
      bool TwoVars = Rng.chance(1, 2) && A != B;
      TermId Lhs = TwoVars ? Arena.mkSub(Vars[A], Vars[B]) : Vars[A];
      int64_t LhsVal = TwoVars ? Witness[A] - Witness[B] : Witness[A];
      switch (Rng.nextBelow(4)) {
      case 0:
        Literals.push_back(Arena.mkEq(Lhs, Arena.mkIntConst(LhsVal)));
        break;
      case 1:
        Literals.push_back(Arena.mkNe(
            Lhs, Arena.mkIntConst(LhsVal + 1 +
                                  static_cast<int64_t>(Rng.nextBelow(9)))));
        break;
      case 2:
        Literals.push_back(Arena.mkLe(
            Lhs, Arena.mkIntConst(LhsVal +
                                  static_cast<int64_t>(Rng.nextBelow(10)))));
        break;
      default:
        Literals.push_back(Arena.mkGe(
            Lhs, Arena.mkIntConst(LhsVal -
                                  static_cast<int64_t>(Rng.nextBelow(10)))));
        break;
      }
    }
    TermId F = Arena.mkAnd(Literals);
    Solver S(Arena);
    SatAnswer Answer = S.check(F);
    ASSERT_TRUE(Answer.isSat())
        << "simple-fragment formula reported "
        << satResultName(Answer.Result) << ": " << Arena.toString(F);
    ASSERT_TRUE(Answer.ModelValue.evalBool(Arena, F));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// Every Unknown answer carries a structured reason string
// (docs/robustness.md): budgets, stop controls, and fragment limits each
// report distinctly so callers (and the search telemetry) can tell a
// resource cliff from an expressiveness cliff.

TEST_F(SolverTest, DecisionBudgetExhaustionIsReported) {
  SolverOptions Options;
  Options.MaxDecisions = 0;
  Solver S(Arena, Options);
  SatAnswer A = S.check(Arena.mkEq(X, Arena.mkIntConst(567)));
  EXPECT_EQ(A.Result, SatResult::Unknown);
  EXPECT_EQ(A.Reason, "decision budget exhausted");
}

TEST_F(SolverTest, SupportBudgetExhaustionIsReported) {
  // First support is unsatisfiable, the budget bars exploring the second:
  // no conclusion about the disjunction is possible.
  TermId Contradiction = Arena.mkAnd(Arena.mkEq(X, Arena.mkIntConst(1)),
                                     Arena.mkEq(X, Arena.mkIntConst(2)));
  TermId F = Arena.mkOr(Contradiction, Arena.mkEq(X, Arena.mkIntConst(3)));
  SolverOptions Options;
  Options.MaxSupports = 1;
  Solver S(Arena, Options);
  SatAnswer A = S.check(F);
  EXPECT_EQ(A.Result, SatResult::Unknown);
  EXPECT_EQ(A.Reason, "support budget exhausted");
}

TEST_F(SolverTest, ExpiredDeadlineIsReported) {
  SolverOptions Options;
  Options.Deadline = support::Deadline::afterNanos(0);
  Solver S(Arena, Options);
  SatAnswer A = S.check(Arena.mkEq(X, Arena.mkIntConst(567)));
  EXPECT_EQ(A.Result, SatResult::Unknown);
  EXPECT_EQ(A.Reason, "deadline expired");
}

TEST_F(SolverTest, CancellationIsReported) {
  SolverOptions Options;
  Options.Cancel = support::CancelToken::create();
  Options.Cancel.requestCancel();
  Solver S(Arena, Options);
  SatAnswer A = S.check(Arena.mkEq(X, Arena.mkIntConst(567)));
  EXPECT_EQ(A.Result, SatResult::Unknown);
  EXPECT_EQ(A.Reason, "cancelled");
}

TEST_F(SolverTest, InactiveStopControlsDoNotPerturbAnswers) {
  // A generous deadline must behave exactly like no deadline: the poll
  // returns None and the query completes normally.
  SolverOptions Options;
  Options.Deadline = support::Deadline::afterMillis(60 * 60 * 1000);
  Solver S(Arena, Options);
  SatAnswer A = S.check(Arena.mkEq(X, Arena.mkIntConst(567)));
  ASSERT_TRUE(A.isSat());
  EXPECT_EQ(A.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0), 567);
}

} // namespace
