//===- tests/test_theorem1.cpp - Theorem 1: exhaustive directed search ------------===//
//
// Theorem 1 (adapted from DART): with sound and complete path-constraint
// generation and constraint solving, a directed search "exercises all
// feasible program paths exactly once", and statements never executed are
// unreachable. For UF-free linear programs this implementation's machinery
// *is* sound and complete, so the theorem must hold observably.
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "interp/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <map>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

class Theorem1Test : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render();
    Prog = std::move(*Parsed);
  }

  static std::string traceKey(const std::vector<BranchEvent> &Trace) {
    std::string Key;
    for (const BranchEvent &E : Trace) {
      Key += std::to_string(E.Branch);
      Key += E.Taken ? 'T' : 'F';
    }
    return Key;
  }

  /// Runs an exhaustive search and returns the multiset of executed paths
  /// (keyed by branch-event trace).
  std::map<std::string, unsigned>
  exhaustiveSearch(std::vector<int64_t> Init, unsigned MaxTests = 64) {
    SearchOptions Options;
    Options.Policy = ConcretizationPolicy::Sound; // Sound and complete here.
    Options.MaxTests = MaxTests;
    Options.SkipCoveredTargets = false;
    TestInput Input;
    Input.Cells = std::move(Init);
    Options.InitialInput = Input;
    DirectedSearch Search(Prog, Natives, Prog.Functions.back()->Name,
                          Options);
    LastResult = Search.run();

    std::map<std::string, unsigned> Paths;
    Interpreter Interp(Prog, Natives);
    for (const TestRecord &T : LastResult.Tests)
      ++Paths[traceKey(
          Interp.run(Prog.Functions.back()->Name, T.Input).Trace)];
    return Paths;
  }

  lang::Program Prog;
  NativeRegistry Natives;
  SearchResult LastResult;
};

TEST_F(Theorem1Test, ThreeIndependentBranchesGiveEightPathsOnce) {
  compile("fun f(x: int, y: int, z: int) -> int {\n"
          "  var n: int = 0;\n"
          "  if (x > 0) { n = n + 1; }\n"
          "  if (y > 0) { n = n + 2; }\n"
          "  if (z > 0) { n = n + 4; }\n"
          "  return n;\n"
          "}");
  auto Paths = exhaustiveSearch({0, 0, 0});
  EXPECT_EQ(Paths.size(), 8u) << "2^3 feasible paths";
  for (const auto &[Trace, Count] : Paths)
    EXPECT_EQ(Count, 1u) << "each path exactly once";
  EXPECT_EQ(LastResult.testsRun(), 8u);
  EXPECT_EQ(LastResult.Divergences, 0u);
}

TEST_F(Theorem1Test, CorrelatedBranchesPruneInfeasiblePaths) {
  // The second test repeats the first condition: only 2 of the 4
  // syntactic paths are feasible, and the search must not waste tests.
  compile("fun f(x: int) -> int {\n"
          "  var n: int = 0;\n"
          "  if (x > 10) { n = 1; }\n"
          "  if (x > 10) { n = n + 1; }\n"
          "  return n;\n"
          "}");
  auto Paths = exhaustiveSearch({0});
  EXPECT_EQ(Paths.size(), 2u);
  for (const auto &[Trace, Count] : Paths)
    EXPECT_EQ(Count, 1u);
}

TEST_F(Theorem1Test, UnexecutedStatementIsUnreachable) {
  // if (x > 5) { if (x < 3) error; } — the error is infeasible; after the
  // exhaustive search terminates (frontier drained before the budget), the
  // un-executed direction certifies unreachability.
  compile("fun f(x: int) -> int {\n"
          "  if (x > 5) {\n"
          "    if (x < 3) { error(\"unreachable\"); }\n"
          "    return 1;\n"
          "  }\n"
          "  return 0;\n"
          "}");
  auto Paths = exhaustiveSearch({0}, /*MaxTests=*/32);
  EXPECT_LT(LastResult.testsRun(), 32u)
      << "the frontier must drain (search is exhaustive), not the budget";
  EXPECT_TRUE(LastResult.Bugs.empty());
  EXPECT_FALSE(LastResult.Cov.isCovered(1, true))
      << "the inner then-branch was proven unreachable by exhaustion";
  EXPECT_EQ(Paths.size(), 2u) << "x<=5 and x>5 are the only feasible paths";
}

TEST_F(Theorem1Test, LoopPathsEnumerateByIterationCount) {
  // A loop bounded by input validation has exactly Bound+2 feasible paths
  // (0..Bound iterations plus the rejected-input path).
  compile("fun f(n: int) -> int {\n"
          "  if (n < 0 || n > 3) { return -1; }\n"
          "  var i: int = 0;\n"
          "  while (i < n) { i = i + 1; }\n"
          "  return i;\n"
          "}");
  auto Paths = exhaustiveSearch({0});
  // Reject is one trace shape (the strict || makes the guard one atomic
  // branch event), plus the n = 0, 1, 2, 3 loop unrollings.
  EXPECT_EQ(Paths.size(), 5u);
  for (const auto &[Trace, Count] : Paths)
    EXPECT_EQ(Count, 1u) << "each feasible path exactly once";
}

} // namespace
