//===- tests/test_vm_bytecode.cpp - Compiler + VM unit tests --------------------===//
//
// Unit tests for the MiniLang → register bytecode compiler (jump
// resolution, constant-pool dedup, register discipline) and for targeted
// VM behaviors the big differential suite would only catch indirectly
// (shadow hygiene when temps are reused, step-budget parity, the
// void-entry return-value edge).
//
//===----------------------------------------------------------------------===//

#include "dse/SymbolicExecutor.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "vm/Compiler.h"
#include "vm/Engine.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace hotg;
using namespace hotg::interp;
using namespace hotg::vm;

namespace {

lang::Program parse(std::string_view Source) {
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(std::string(Source), Diags);
  if (!Prog) {
    ADD_FAILURE() << "parse failed:\n" << Diags.render("<test>");
    return {};
  }
  return std::move(*Prog);
}

//===----------------------------------------------------------------------===//
// Compiler structure
//===----------------------------------------------------------------------===//

TEST(VmCompiler, JumpTargetsResolveInsideTheFunction) {
  lang::Program Prog = parse(R"(
    fun main(x: int) -> int {
      var acc: int = 0;
      while (x > 0) {
        if (x > 10) { acc = acc + 2; } else { acc = acc + 1; }
        x = x - 1;
      }
      if (acc > 5) { return acc; }
      return 0;
    }
  )");
  CompiledProgram CP = compile(Prog);
  ASSERT_EQ(CP.Functions.size(), 1u);
  const CompiledFunction &Fn = CP.Functions[0];

  bool SawBackEdge = false;
  for (size_t I = 0; I != Fn.Code.size(); ++I) {
    const Instr &In = Fn.Code[I];
    if (In.Op == Opcode::Jmp) {
      ASSERT_LT(In.A, Fn.Code.size()) << disassemble(CP, Fn);
      if (In.A <= I)
        SawBackEdge = true;
    } else if (In.Op == Opcode::BrCond) {
      ASSERT_LT(In.C, Fn.Code.size()) << disassemble(CP, Fn);
    }
  }
  // The while loop must have produced exactly one backward jump.
  EXPECT_TRUE(SawBackEdge) << disassemble(CP, Fn);
  // Locs stay parallel to Code (fault attribution indexes by PC).
  EXPECT_EQ(Fn.Code.size(), Fn.Locs.size());
}

TEST(VmCompiler, ConstantPoolDeduplicates) {
  lang::Program Prog = parse(R"(
    fun helper(a: int) -> int { return a + 7; }
    fun main(x: int) -> int {
      var a: int = 7;
      var b: int = 7;
      var c: int = 9;
      return helper(a + b + c + 7);
    }
  )");
  CompiledProgram CP = compile(Prog);
  EXPECT_EQ(std::count(CP.ConstPool.begin(), CP.ConstPool.end(), 7), 1)
      << "literal 7 must intern once across functions";
  EXPECT_EQ(std::count(CP.ConstPool.begin(), CP.ConstPool.end(), 9), 1);
}

TEST(VmCompiler, RegistersStayWithinDeclaredBounds) {
  lang::Program Prog = parse(R"(
    fun main(x: int, y: int) -> int {
      return ((x + 1) * (y + 2) + (x - y)) + ((x + y) + (x + 3) + (y + 4));
    }
  )");
  CompiledProgram CP = compile(Prog);
  const CompiledFunction &Fn = CP.Functions[0];
  for (const Instr &In : Fn.Code) {
    switch (In.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      EXPECT_LT(In.A, Fn.NumRegs);
      EXPECT_LT(In.B, Fn.NumRegs);
      EXPECT_LT(In.C, Fn.NumRegs);
      break;
    default:
      break;
    }
  }
  EXPECT_GE(Fn.NumRegs, Fn.NumSlots);
}

TEST(VmCompiler, DisassemblerNamesEveryOpcode) {
  lang::Program Prog = parse(R"(
    extern hash(int) -> int;
    fun helper(a: int) -> int { return a; }
    fun main(x: int, buf: int[3]) -> int {
      var t: int = hash(x);
      buf[0] = t % 3;
      if (buf[0] > 1 && x != 0) { error("boom"); }
      return helper(-t);
    }
  )");
  CompiledProgram CP = compile(Prog);
  std::string Text = disassemble(CP, *CP.findFunction("main"));
  for (const char *Mnemonic : {"callnat", "starr", "ldarr", "mod", "error"})
    EXPECT_NE(Text.find(Mnemonic), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// Targeted VM semantics
//===----------------------------------------------------------------------===//

/// Reusing an expression temp must not leak the previous occupant's shadow
/// term: here the first condition's temp holds a symbolic comparison, and
/// the arithmetic that reuses the register afterwards is purely concrete.
/// A stale shadow would emit a phantom constraint at the second branch.
TEST(VmShadow, ReusedTempCarriesNoStaleShadow) {
  lang::Program Prog = parse(R"(
    fun main(x: int) -> int {
      var hits: int = 0;
      if (x > 5) { hits = hits + 1; }
      var probe: int = 1 + 2;
      if (probe == 3) { hits = hits + 1; }
      return hits;
    }
  )");
  NativeRegistry Natives;
  TestInput Input;
  Input.Cells = {7};

  dse::ExecOptions Options;
  Options.Policy = dse::ConcretizationPolicy::SoundDelayed;

  smt::TermArena RefArena;
  dse::SymbolicExecutor Ref(Prog, Natives, RefArena, Options);
  dse::PathResult Expected = Ref.execute("main", Input);

  smt::TermArena VmArena;
  CompiledProgram CP = compile(Prog);
  VM Machine(CP, Natives, VmArena);
  Machine.setOptions(Options);
  dse::PathResult Actual = Machine.execute("main", Input);

  // Only the symbolic x > 5 constrains the path; probe == 3 folds away.
  ASSERT_EQ(Expected.PC.size(), 1u);
  ASSERT_EQ(Actual.PC.size(), Expected.PC.size());
  EXPECT_EQ(Actual.PC.Entries[0].Constraint,
            Expected.PC.Entries[0].Constraint);
  EXPECT_EQ(Actual.PC.toString(VmArena), Expected.PC.toString(RefArena));
}

/// Same hygiene across branch arms: the else-arm writes the slot the
/// then-arm made symbolic; on an input taking the else-arm the slot must
/// read back concrete (re-declaration inside loops reuses slots too).
TEST(VmShadow, BranchArmsResetSlotShadow) {
  lang::Program Prog = parse(R"(
    fun main(x: int) -> int {
      var t: int = 0;
      if (x > 5) { t = x; } else { t = 1; }
      if (t > 0) { return 1; }
      return 0;
    }
  )");
  NativeRegistry Natives;
  TestInput Input;
  Input.Cells = {2}; // else-arm: t is the concrete 1.

  dse::ExecOptions Options;
  Options.Policy = dse::ConcretizationPolicy::SoundDelayed;

  smt::TermArena RefArena;
  dse::SymbolicExecutor Ref(Prog, Natives, RefArena, Options);
  dse::PathResult Expected = Ref.execute("main", Input);

  smt::TermArena VmArena;
  CompiledProgram CP = compile(Prog);
  VM Machine(CP, Natives, VmArena);
  Machine.setOptions(Options);
  dse::PathResult Actual = Machine.execute("main", Input);

  ASSERT_EQ(Actual.PC.size(), Expected.PC.size());
  for (size_t I = 0; I != Expected.PC.size(); ++I)
    EXPECT_EQ(Actual.PC.Entries[I].Constraint,
              Expected.PC.Entries[I].Constraint)
        << "entry " << I;
  EXPECT_EQ(Actual.Run.Trace.size(), Expected.Run.Trace.size());
}

/// Step budgets replay the AST walk exactly: same Steps total, and a
/// MaxSteps cut must land on the same step count and status.
TEST(VmBudget, StepChargesMatchTheInterpreter) {
  lang::Program Prog = parse(R"(
    fun main(x: int) -> int {
      var acc: int = 0;
      var i: int = 0;
      while (i < 500) {
        acc = acc + i * 2 - 1;
        i = i + 1;
      }
      return acc;
    }
  )");
  NativeRegistry Natives;
  TestInput Input;
  Input.Cells = {0};
  CompiledProgram CP = compile(Prog);
  smt::TermArena Arena;
  VM Machine(CP, Natives, Arena);

  Interpreter Interp(Prog, Natives);
  RunResult Reference = Interp.run("main", Input);
  RunResult Replay = Machine.runConcrete("main", Input, Interp.limits());
  EXPECT_EQ(Replay.Steps, Reference.Steps);
  EXPECT_EQ(Replay.Status, Reference.Status);
  ASSERT_TRUE(Replay.ReturnValue && Reference.ReturnValue);
  EXPECT_EQ(*Replay.ReturnValue, *Reference.ReturnValue);

  // Sweep cut points around the observed total: status and step count
  // must agree at every budget, including mid-loop cuts.
  for (uint64_t Budget : {Reference.Steps / 2, Reference.Steps - 1,
                          Reference.Steps, Reference.Steps + 1}) {
    RunLimits Limits;
    Limits.MaxSteps = Budget;
    Interp.setLimits(Limits);
    RunResult A = Interp.run("main", Input);
    RunResult B = Machine.runConcrete("main", Input, Limits);
    EXPECT_EQ(B.Status, A.Status) << "budget " << Budget;
    EXPECT_EQ(B.Steps, A.Steps) << "budget " << Budget;
  }
}

/// A void entry falling off the end leaves ReturnValue unset concretely
/// (interpreter semantics) but reports 0 through the shadow path
/// (co-executor semantics). Both quirks are load-bearing for byte
/// identity.
TEST(VmBudget, VoidEntryReturnValueMatchesBothWalkers) {
  lang::Program Prog = parse(R"(
    fun main(x: int) {
      var y: int = x + 1;
    }
  )");
  NativeRegistry Natives;
  TestInput Input;
  Input.Cells = {5};
  CompiledProgram CP = compile(Prog);
  smt::TermArena Arena;
  VM Machine(CP, Natives, Arena);

  Interpreter Interp(Prog, Natives);
  RunResult Concrete = Machine.runConcrete("main", Input, Interp.limits());
  EXPECT_EQ(Concrete.ReturnValue.has_value(),
            Interp.run("main", Input).ReturnValue.has_value());
  EXPECT_FALSE(Concrete.ReturnValue.has_value());

  smt::TermArena RefArena;
  dse::SymbolicExecutor Ref(Prog, Natives, RefArena);
  dse::PathResult Shadow = Machine.execute("main", Input);
  EXPECT_EQ(Shadow.Run.ReturnValue, Ref.execute("main", Input).Run.ReturnValue);
  ASSERT_TRUE(Shadow.Run.ReturnValue.has_value());
  EXPECT_EQ(*Shadow.Run.ReturnValue, 0);
}

/// Engine-seam surface: names parse both ways and unknown names fail.
TEST(VmEngine, EngineNamesRoundTrip) {
  EXPECT_STREQ(engineName(EngineKind::VM), "vm");
  EXPECT_STREQ(engineName(EngineKind::Interp), "interp");
  EXPECT_EQ(parseEngineName("vm"), EngineKind::VM);
  EXPECT_EQ(parseEngineName("interp"), EngineKind::Interp);
  EXPECT_FALSE(parseEngineName("bogus").has_value());
  EXPECT_FALSE(parseEngineName("").has_value());
}

} // namespace
