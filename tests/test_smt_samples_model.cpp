//===- tests/test_smt_samples_model.cpp - SampleTable and Model unit tests --------===//

#include "smt/Model.h"
#include "smt/SampleTable.h"

#include <gtest/gtest.h>

using namespace hotg::smt;

namespace {

TEST(SampleTable, RecordAndLookup) {
  SampleTable T;
  T.record(0, {42}, 567);
  T.record(0, {7}, 99);
  T.record(1, {1, 2}, 3);

  auto V = T.lookup(0, {42});
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 567);
  EXPECT_FALSE(T.lookup(0, {43}).has_value());
  EXPECT_FALSE(T.lookup(2, {42}).has_value());
  EXPECT_EQ(T.size(), 3u);
}

TEST(SampleTable, DuplicateRecordingIsIdempotent) {
  SampleTable T;
  T.record(0, {42}, 567);
  T.record(0, {42}, 567);
  EXPECT_EQ(T.size(), 1u);
}

TEST(SampleTable, SamplesForFiltersBySymbol) {
  SampleTable T;
  T.record(0, {1}, 10);
  T.record(1, {2}, 20);
  T.record(0, {3}, 30);
  auto S = T.samplesFor(0);
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0].Args, std::vector<int64_t>{1});
  EXPECT_EQ(S[1].Output, 30);
}

TEST(SampleTable, PreimagesOfHandlesCollisions) {
  SampleTable T;
  T.record(0, {5}, 100);
  T.record(0, {9}, 100);
  T.record(0, {7}, 50);
  auto P = T.preimagesOf(0, 100);
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(P[0], std::vector<int64_t>{5});
  EXPECT_EQ(P[1], std::vector<int64_t>{9});
  EXPECT_TRUE(T.preimagesOf(0, 1).empty());
}

TEST(SampleTable, MergeAccumulatesAcrossRuns) {
  // The paper (end of Section 4.3) suggests keeping pairs "observed during
  // all previous runs".
  SampleTable A, B;
  A.record(0, {1}, 10);
  B.record(0, {2}, 20);
  B.record(0, {1}, 10); // Overlap is fine when consistent.
  A.mergeFrom(B);
  EXPECT_EQ(A.size(), 2u);
}

TEST(SampleTable, ClearEmpties) {
  SampleTable T;
  T.record(0, {1}, 2);
  T.clear();
  EXPECT_TRUE(T.empty());
  EXPECT_FALSE(T.lookup(0, {1}).has_value());
}

TEST(Model, VariableAssignments) {
  Model M;
  EXPECT_FALSE(M.varValue(0).has_value());
  EXPECT_EQ(M.varValueOr(0, -1), -1);
  M.setVar(0, 42);
  EXPECT_EQ(M.varValueOr(0, -1), 42);
  EXPECT_TRUE(M.hasVar(0));
}

TEST(Model, EvaluationWithDefaults) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  Model M;
  M.setVar(Arena.getOrCreateVar("x"), 10);
  // y defaults to 0 in unchecked evaluation.
  EXPECT_EQ(M.evalInt(Arena, Arena.mkAdd(X, Y)), 10);
  EXPECT_FALSE(M.evalIntChecked(Arena, Arena.mkAdd(X, Y)).has_value());
  auto V = M.evalIntChecked(Arena, Arena.mkMul(Arena.mkIntConst(3), X));
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 30);
}

TEST(Model, BooleanEvaluation) {
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  Model M;
  M.setVar(Arena.getOrCreateVar("x"), 5);
  EXPECT_TRUE(M.evalBool(Arena, Arena.mkGt(X, Arena.mkIntConst(3))));
  EXPECT_FALSE(M.evalBool(Arena, Arena.mkEq(X, Arena.mkIntConst(3))));
  TermId Impl = Arena.mkImplies(Arena.mkLt(X, Arena.mkIntConst(0)),
                                Arena.mkEq(X, Arena.mkIntConst(99)));
  EXPECT_TRUE(M.evalBool(Arena, Impl)) << "false antecedent";
}

TEST(Model, FunctionValuesFromSamplesAndExtensions) {
  TermArena Arena;
  FuncId H = Arena.getOrCreateFunc("h", 1);
  SampleTable Samples;
  Samples.record(H, {42}, 567);

  Model M;
  M.attachSamples(&Samples);
  M.extendFunc(H, {7}, 99);

  auto FromSamples = M.funcValue(H, {42});
  ASSERT_TRUE(FromSamples);
  EXPECT_EQ(*FromSamples, 567);
  auto FromExt = M.funcValue(H, {7});
  ASSERT_TRUE(FromExt);
  EXPECT_EQ(*FromExt, 99);
  EXPECT_FALSE(M.funcValue(H, {8}).has_value());

  // UF evaluation threads through arguments.
  TermId Y = Arena.mkVar("y");
  M.setVar(Arena.getOrCreateVar("y"), 42);
  EXPECT_EQ(M.evalInt(Arena, Arena.mkUFApp(H, {{Y}})), 567);
  auto Checked = M.evalIntChecked(
      Arena, Arena.mkUFApp(H, {{Arena.mkIntConst(8)}}));
  EXPECT_FALSE(Checked.has_value()) << "unmodelled point is not determined";
}

TEST(Model, ToStringIsSortedAndNamed) {
  TermArena Arena;
  Model M;
  M.setVar(Arena.getOrCreateVar("b"), 2);
  M.setVar(Arena.getOrCreateVar("a"), 1);
  EXPECT_EQ(M.toString(Arena), "b=2, a=1") << "sorted by variable id";
}

} // namespace
