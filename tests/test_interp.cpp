//===- tests/test_interp.cpp - Concrete interpreter unit tests --------------------===//

#include "interp/Interp.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::interp;

namespace {

class InterpTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render();
    Prog = std::move(*Parsed);
  }

  RunResult run(std::string_view Entry, std::vector<int64_t> Cells) {
    Interpreter I(Prog, Natives);
    I.setLimits(Limits);
    if (Observer)
      I.setNativeObserver(Observer);
    TestInput Input;
    Input.Cells = std::move(Cells);
    return I.run(Entry, Input);
  }

  lang::Program Prog;
  NativeRegistry Natives;
  RunLimits Limits;
  NativeCallObserver Observer;
};

TEST_F(InterpTest, ArithmeticAndReturn) {
  compile("fun f(x: int, y: int) -> int { return (x + y) * 2 - x % y; }");
  RunResult R = run("f", {7, 3});
  EXPECT_EQ(R.Status, RunStatus::Ok);
  EXPECT_EQ(R.ReturnValue, (7 + 3) * 2 - 7 % 3);
}

TEST_F(InterpTest, TruncatedDivisionSemantics) {
  compile("fun f(x: int, y: int) -> int { return x / y; }");
  EXPECT_EQ(run("f", {7, 2}).ReturnValue, 3);
  EXPECT_EQ(run("f", {-7, 2}).ReturnValue, -3) << "C-style truncation";
  EXPECT_EQ(run("f", {7, -2}).ReturnValue, -3);
}

TEST_F(InterpTest, WrappedOverflow) {
  compile("fun f(x: int) -> int { return x + 1; }");
  EXPECT_EQ(run("f", {INT64_MAX}).ReturnValue, INT64_MIN);
}

TEST_F(InterpTest, DivisionByZeroFaults) {
  compile("fun f(x: int) -> int { return 10 / x; }");
  RunResult R = run("f", {0});
  EXPECT_EQ(R.Status, RunStatus::DivByZero);
  EXPECT_TRUE(R.isBug());
}

TEST_F(InterpTest, BranchTraceRecordsDirections) {
  compile("fun f(x: int) -> int {\n"
          "  if (x > 0) { return 1; }\n"
          "  if (x < 0) { return -1; }\n"
          "  return 0;\n"
          "}");
  RunResult R = run("f", {5});
  ASSERT_EQ(R.Trace.size(), 1u);
  EXPECT_EQ(R.Trace[0], (BranchEvent{0, true}));

  R = run("f", {-5});
  ASSERT_EQ(R.Trace.size(), 2u);
  EXPECT_EQ(R.Trace[0], (BranchEvent{0, false}));
  EXPECT_EQ(R.Trace[1], (BranchEvent{1, true}));
}

TEST_F(InterpTest, WhileLoopTracesEveryIteration) {
  compile("fun f(n: int) -> int {\n"
          "  var s: int = 0;\n"
          "  var i: int = 0;\n"
          "  while (i < n) { s = s + i; i = i + 1; }\n"
          "  return s;\n"
          "}");
  RunResult R = run("f", {4});
  EXPECT_EQ(R.ReturnValue, 0 + 1 + 2 + 3);
  EXPECT_EQ(R.Trace.size(), 5u) << "4 true iterations + 1 false exit";
}

TEST_F(InterpTest, ErrorStatementHaltsWithSite) {
  compile("fun f(x: int) -> int {\n"
          "  if (x == 1) { error(\"one\"); }\n"
          "  if (x == 2) { error(\"two\"); }\n"
          "  return 0;\n"
          "}");
  RunResult R = run("f", {2});
  EXPECT_EQ(R.Status, RunStatus::ErrorHit);
  ASSERT_TRUE(R.Error.has_value());
  EXPECT_EQ(R.Error->Site, 1u);
  EXPECT_EQ(R.Error->Message, "two");
}

TEST_F(InterpTest, AssertFailureHalts) {
  compile("fun f(x: int) { assert(x > 0); }");
  EXPECT_EQ(run("f", {1}).Status, RunStatus::Ok);
  EXPECT_EQ(run("f", {0}).Status, RunStatus::AssertFailed);
}

TEST_F(InterpTest, ArraysHaveReferenceSemanticsAcrossCalls) {
  compile("fun fill(a: int[3]) { a[0] = 7; a[1] = 8; a[2] = 9; }\n"
          "fun f(a: int[3]) -> int {\n"
          "  fill(a);\n"
          "  return a[0] + a[1] + a[2];\n"
          "}");
  EXPECT_EQ(run("f", {0, 0, 0}).ReturnValue, 24);
}

TEST_F(InterpTest, ArrayInputsArriveInCells) {
  compile("fun f(a: int[4]) -> int { return a[0] + a[3]; }");
  EXPECT_EQ(run("f", {10, 20, 30, 40}).ReturnValue, 50);
}

TEST_F(InterpTest, OutOfBoundsFaults) {
  compile("fun f(a: int[2], i: int) -> int { return a[i]; }");
  EXPECT_EQ(run("f", {1, 2, 1}).Status, RunStatus::Ok);
  EXPECT_EQ(run("f", {1, 2, 2}).Status, RunStatus::OutOfBounds);
  EXPECT_EQ(run("f", {1, 2, -1}).Status, RunStatus::OutOfBounds);
}

TEST_F(InterpTest, StepLimitStopsInfiniteLoops) {
  compile("fun f(x: int) -> int { while (x == x) { } return 0; }");
  Limits.MaxSteps = 1000;
  RunResult R = run("f", {1});
  EXPECT_EQ(R.Status, RunStatus::StepLimit);
  EXPECT_FALSE(R.isBug()) << "timeouts are not bugs";
}

TEST_F(InterpTest, CallDepthLimitStopsRecursion) {
  compile("fun f(x: int) -> int { return f(x + 1); }");
  Limits.MaxCallDepth = 16;
  EXPECT_EQ(run("f", {0}).Status, RunStatus::CallDepth);
}

TEST_F(InterpTest, NativeCallsAreObserved) {
  compile("extern hash(int) -> int;\n"
          "fun f(x: int) -> int { return hash(x) + hash(7); }");
  Natives.registerDefaultHashes();
  std::vector<std::pair<std::vector<int64_t>, int64_t>> Calls;
  Observer = [&](const NativeFunc &Func, std::span<const int64_t> Args,
                 int64_t Out) {
    EXPECT_EQ(Func.Name, "hash");
    Calls.emplace_back(std::vector<int64_t>(Args.begin(), Args.end()), Out);
  };
  RunResult R = run("f", {3});
  EXPECT_EQ(R.Status, RunStatus::Ok);
  ASSERT_EQ(Calls.size(), 2u);
  EXPECT_EQ(Calls[0].first, std::vector<int64_t>{3});
  EXPECT_EQ(Calls[0].second, defaultHash1(3));
  EXPECT_EQ(Calls[1].first, std::vector<int64_t>{7});
}

TEST_F(InterpTest, StrictLogicalOperatorsEvaluateBothSides) {
  // MiniLang's && is strict: the division on the right faults even though
  // the left side is false.
  compile("fun f(x: int) -> bool { return x > 0 && 10 / x > 0; }");
  EXPECT_EQ(run("f", {0}).Status, RunStatus::DivByZero);
}

TEST_F(InterpTest, BoolLocalsAndParams) {
  compile("fun f(x: int) -> int {\n"
          "  var b: bool = x > 3;\n"
          "  if (b || x == 0) { return 1; }\n"
          "  return 0;\n"
          "}");
  EXPECT_EQ(run("f", {4}).ReturnValue, 1);
  EXPECT_EQ(run("f", {0}).ReturnValue, 1);
  EXPECT_EQ(run("f", {2}).ReturnValue, 0);
}

TEST_F(InterpTest, MissingReturnDefaultsToZero) {
  compile("fun f(x: int) -> int { if (x > 0) { return 5; } }");
  EXPECT_EQ(run("f", {-1}).ReturnValue, 0);
}

TEST_F(InterpTest, InputLayoutNamesCells) {
  compile("fun f(x: int, buf: int[2], y: int) -> int { return x; }");
  InputLayout Layout(*Prog.findFunction("f"));
  ASSERT_EQ(Layout.size(), 4u);
  EXPECT_EQ(Layout.name(0), "x");
  EXPECT_EQ(Layout.name(1), "buf[0]");
  EXPECT_EQ(Layout.name(2), "buf[1]");
  EXPECT_EQ(Layout.name(3), "y");
  EXPECT_EQ(Layout.paramBegin(1), 1u);
  EXPECT_EQ(Layout.paramWidth(1), 2u);
  EXPECT_EQ(Layout.zeroInput().Cells.size(), 4u);
}

} // namespace
