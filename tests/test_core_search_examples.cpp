//===- tests/test_core_search_examples.cpp - The paper's outcome matrix ---------===//
//
// Integration tests asserting the qualitative claims of the paper for each
// example program and each test-generation strategy (experiments E1-E8 and
// E10 of DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "app/Examples.h"
#include "core/Search.h"
#include "interp/NativeFunc.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

/// Shared fixture: compiles an example and runs the search with a policy.
class ExampleSearchTest : public ::testing::Test {
protected:
  SearchResult runExample(std::string_view Name, ConcretizationPolicy Policy,
                          unsigned MaxTests = 32,
                          std::function<void(SearchOptions &)> Tweak = {}) {
    ExampleProgram Example = exampleByName(Name);
    Prog = compileExample(Example);
    registerExampleNatives(Natives);

    SearchOptions Options;
    Options.Policy = Policy;
    Options.MaxTests = MaxTests;
    Options.InitialInput = Example.InitialInput;
    if (Tweak)
      Tweak(Options);
    DirectedSearch Search(Prog, Natives, Example.Entry, Options);
    return Search.run();
  }

  lang::Program Prog;
  NativeRegistry Natives;
};

//===----------------------------------------------------------------------===//
// E1 — obscure (Section 1): every dynamic strategy covers both branches;
// the "static" mode (no concrete fallback) is modelled by the solver being
// unable to invert hash, which all strategies overcome dynamically.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, ObscureUnsoundFindsError) {
  SearchResult R = runExample("obscure", ConcretizationPolicy::Unsound);
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, ObscureSoundFindsError) {
  // Sound concretization fixes y = 42 but can still solve x = hash-value.
  SearchResult R = runExample("obscure", ConcretizationPolicy::Sound);
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, ObscureHigherOrderFindsError) {
  SearchResult R = runExample("obscure", ConcretizationPolicy::HigherOrder);
  EXPECT_TRUE(R.foundErrorSite(0));
  EXPECT_EQ(R.Divergences, 0u) << "higher-order path constraints are sound";
}

//===----------------------------------------------------------------------===//
// E2 — foo (Example 1 / Example 7).
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, FooSoundCannotReachNestedError) {
  // Example 1: with sound concretization the alternate constraint
  // y = 42 ∧ x = h ∧ y = 10 is unsatisfiable; no divergences happen and
  // the error is missed.
  SearchResult R = runExample("foo", ConcretizationPolicy::Sound);
  EXPECT_FALSE(R.foundErrorSite(0));
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_F(ExampleSearchTest, FooHigherOrderTwoStepReachesError) {
  // Example 7: two-step generation — learn h(10), then solve x = h(10).
  SearchResult R = runExample("foo", ConcretizationPolicy::HigherOrder);
  EXPECT_TRUE(R.foundErrorSite(0));
  EXPECT_GE(R.MultiStepRuns, 1u) << "the error needs an intermediate run";
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_F(ExampleSearchTest, FooHigherOrderOneShotFails) {
  // With the multi-step bound at 0 the strategy for x = h(y) ∧ y = 10
  // cannot be completed (h(10) never sampled).
  SearchResult R = runExample(
      "foo", ConcretizationPolicy::HigherOrder, 32,
      [](SearchOptions &O) { O.MultiStepBound = 0; });
  EXPECT_FALSE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, FooUnsoundDiverges) {
  // Section 3.2: the unsound path constraint x = h ∧ y = 10 is satisfiable
  // but running its model diverges (bad divergence).
  SearchResult R = runExample("foo", ConcretizationPolicy::Unsound);
  EXPECT_GE(R.Divergences, 1u);
  EXPECT_FALSE(R.foundErrorSite(0));
}

//===----------------------------------------------------------------------===//
// E3 — foo_bis (Example 2): the good divergence.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, FooBisUnsoundFindsErrorViaGoodDivergence) {
  SearchResult R = runExample("foo_bis", ConcretizationPolicy::Unsound);
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, FooBisSoundMissesError) {
  SearchResult R = runExample("foo_bis", ConcretizationPolicy::Sound);
  EXPECT_FALSE(R.foundErrorSite(0));
  EXPECT_EQ(R.Divergences, 0u);
}

//===----------------------------------------------------------------------===//
// E4 — bar (Example 3): incomparability.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, BarUnsoundDivergesWithoutFindingError) {
  SearchResult R = runExample("bar", ConcretizationPolicy::Unsound);
  EXPECT_FALSE(R.foundErrorSite(0));
  EXPECT_GE(R.Divergences, 1u);
}

TEST_F(ExampleSearchTest, BarHigherOrderDoesNotFindError) {
  SearchResult R = runExample("bar", ConcretizationPolicy::HigherOrder, 24);
  EXPECT_FALSE(R.foundErrorSite(0));
  EXPECT_EQ(R.Divergences, 0u);
}

//===----------------------------------------------------------------------===//
// E5 — pub (Example 4): samples are necessary.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, PubSoundFindsError) {
  // Sound concretization fixes x = 1 and simplifies 5 > 0 to true; the
  // alternate constraint x = 1 ∧ y = 10 is satisfiable.
  SearchResult R = runExample("pub", ConcretizationPolicy::Sound);
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, PubHigherOrderWithSamplesFindsError) {
  SearchResult R = runExample("pub", ConcretizationPolicy::HigherOrder);
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, PubHigherOrderWithoutSamplesFails) {
  // Example 4's point: without uninterpreted function samples the
  // post-processed formula ∃x,y: h(x) > 0 ∧ y = 10 is invalid.
  SearchResult R = runExample(
      "pub", ConcretizationPolicy::HigherOrder, 32, [](SearchOptions &O) {
        O.RecordSamples = false;
        O.MultiStepBound = 0;
      });
  EXPECT_FALSE(R.foundErrorSite(0));
}

//===----------------------------------------------------------------------===//
// E6 — eq_pair (Example 5): the EUF congruence strategy x = y.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, EqPairHigherOrderFindsErrorViaCongruence) {
  SearchResult R = runExample("eq_pair", ConcretizationPolicy::HigherOrder);
  EXPECT_TRUE(R.foundErrorSite(0));
  // The strategy must have produced equal inputs.
  bool SawEqualPair = false;
  for (const BugRecord &Bug : R.Bugs)
    if (Bug.Input.Cells.size() == 2 &&
        Bug.Input.Cells[0] == Bug.Input.Cells[1])
      SawEqualPair = true;
  EXPECT_TRUE(SawEqualPair);
}

TEST_F(ExampleSearchTest, EqPairSoundCannotFindError) {
  SearchResult R = runExample("eq_pair", ConcretizationPolicy::Sound);
  EXPECT_FALSE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, EqPairUnsoundCannotFindError) {
  SearchResult R = runExample("eq_pair", ConcretizationPolicy::Unsound);
  EXPECT_FALSE(R.foundErrorSite(0));
}

//===----------------------------------------------------------------------===//
// E7 — offset (Example 6): the antecedent enables the proof.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, OffsetHigherOrderWithAntecedentFindsError) {
  SearchResult R = runExample("offset", ConcretizationPolicy::HigherOrder);
  EXPECT_TRUE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, OffsetHigherOrderWithoutAntecedentFails) {
  SearchResult R = runExample(
      "offset", ConcretizationPolicy::HigherOrder, 16, [](SearchOptions &O) {
        O.UseAntecedent = false;
        O.MultiStepBound = 0;
      });
  EXPECT_FALSE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, OffsetSoundCannotFindError) {
  SearchResult R = runExample("offset", ConcretizationPolicy::Sound);
  EXPECT_FALSE(R.foundErrorSite(0));
}

//===----------------------------------------------------------------------===//
// E10 — assign_then_test (Section 3.3): delayed concretization keeps the
// branch reachable.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, AssignThenTestSoundEagerMissesError) {
  SearchResult R =
      runExample("assign_then_test", ConcretizationPolicy::Sound);
  EXPECT_FALSE(R.foundErrorSite(0));
}

TEST_F(ExampleSearchTest, AssignThenTestSoundDelayedFindsError) {
  SearchResult R =
      runExample("assign_then_test", ConcretizationPolicy::SoundDelayed);
  EXPECT_TRUE(R.foundErrorSite(0));
  EXPECT_EQ(R.Divergences, 0u);
}

//===----------------------------------------------------------------------===//
// Extensions: chained hashes and nonlinear unknown instructions.
//===----------------------------------------------------------------------===//

TEST_F(ExampleSearchTest, ChainedHashHigherOrderFindsErrorIfSamplesAlign) {
  // Reaching the error requires hash(x) == hash2(y) + 1 for sampled x, y;
  // multi-step learning explores sampled points. This is the stress case:
  // success depends on the learned sample pool, so only soundness (no
  // divergence) is asserted here; discovery is exercised in the bench.
  SearchResult R = runExample("chained_hash",
                              ConcretizationPolicy::HigherOrder, 24);
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_F(ExampleSearchTest, NonlinearHigherOrderSoundness) {
  SearchResult R = runExample("nonlinear",
                              ConcretizationPolicy::HigherOrder, 24);
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_F(ExampleSearchTest, NonlinearUnsoundMayDivergeButRuns) {
  SearchResult R = runExample("nonlinear", ConcretizationPolicy::Unsound);
  EXPECT_GE(R.testsRun(), 1u);
}

} // namespace
