//===- tests/test_property_theorems.cpp - The paper's theorems as properties ------===//
//
// Randomized property tests for:
//  * Theorem 2 — sound concretization generates sound path constraints:
//    every solver model of the path constraint replays the same trace.
//  * Theorem 3 — higher-order path constraints are sound: directed search
//    with validity-derived tests never diverges.
//  * Theorem 4 (Simulation) — whenever the sound-concretization alternate
//    constraint is satisfiable, the corresponding higher-order POST
//    formula (with samples) admits a strategy.
//
//===----------------------------------------------------------------------===//

#include "core/Post.h"
#include "core/Search.h"
#include "core/ValiditySolver.h"
#include "dse/SymbolicExecutor.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "smt/Solver.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

/// Generates random but well-formed MiniLang programs over three integer
/// inputs, with linear arithmetic, nested conditionals, bounded loops and
/// unknown hash calls — the feature mix the soundness theorems quantify
/// over.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  std::string generate() {
    Depth = 0;
    NumVars = 0;
    std::string Body = block(3);
    return "extern hash(int) -> int;\nextern hash2(int) -> int;\n"
           "fun main(x: int, y: int, z: int) -> int {\n" +
           Body + "  return 0;\n}\n";
  }

private:
  std::string var() {
    static const char *Inputs[] = {"x", "y", "z"};
    if (NumVars > 0 && Rng.chance(1, 2))
      return formatString("v%u", static_cast<unsigned>(
                                     Rng.nextBelow(NumVars)));
    return Inputs[Rng.nextBelow(3)];
  }

  std::string intExpr(unsigned Size) {
    if (Size == 0 || Rng.chance(1, 3))
      return Rng.chance(1, 2)
                 ? var()
                 : formatString("%lld", static_cast<long long>(
                                            Rng.nextInRange(-20, 20)));
    switch (Rng.nextBelow(5)) {
    case 0:
      return "(" + intExpr(Size - 1) + " + " + intExpr(Size - 1) + ")";
    case 1:
      return "(" + intExpr(Size - 1) + " - " + intExpr(Size - 1) + ")";
    case 2:
      return formatString("(%lld * ",
                          static_cast<long long>(Rng.nextInRange(-3, 3))) +
             intExpr(Size - 1) + ")";
    case 3:
      return (Rng.chance(1, 2) ? std::string("hash(")
                               : std::string("hash2(")) +
             intExpr(Size - 1) + ")";
    default:
      return "(-" + intExpr(Size - 1) + ")";
    }
  }

  std::string boolExpr(unsigned Size) {
    static const char *Cmps[] = {"==", "!=", "<", "<=", ">", ">="};
    std::string Base = intExpr(Size) + " " + Cmps[Rng.nextBelow(6)] + " " +
                       intExpr(Size);
    if (Size > 0 && Rng.chance(1, 4))
      return "(" + Base + (Rng.chance(1, 2) ? " && " : " || ") + "(" +
             boolExpr(Size - 1) + "))";
    return Base;
  }

  std::string indent() const {
    return std::string(static_cast<size_t>(Depth + 1) * 2, ' ');
  }

  std::string statement() {
    switch (Rng.nextBelow(6)) {
    case 0: { // Variable declaration (initializer sees only prior vars).
      std::string Init = intExpr(2);
      std::string Name = formatString("v%u", NumVars++);
      return indent() + "var " + Name + ": int = " + Init + ";\n";
    }
    case 1: // Assignment (only to generated locals, to stay well-formed).
      if (NumVars > 0) {
        std::string Name = formatString(
            "v%u", static_cast<unsigned>(Rng.nextBelow(NumVars)));
        return indent() + Name + " = " + intExpr(2) + ";\n";
      }
      [[fallthrough]];
    case 2: { // Conditional.
      if (Depth >= 3)
        return indent() + "v0 = 0;\n"; // Too deep; degrade gracefully.
      unsigned SavedVars = NumVars;
      // Sequence the calls explicitly: block() mutates NumVars and must
      // not run before the condition is generated.
      std::string Cond = boolExpr(1);
      std::string Body = block(2);
      std::string Out = indent() + "if (" + Cond + ")\n" + Body;
      NumVars = SavedVars;
      if (Rng.chance(1, 2)) {
        SavedVars = NumVars;
        std::string ElseBody = block(1);
        Out += indent() + "else\n" + ElseBody;
        NumVars = SavedVars;
      }
      return Out;
    }
    case 3: { // Bounded loop over a fresh counter.
      if (Depth >= 3)
        return indent() + "v0 = 0;\n";
      std::string Counter = formatString("v%u", NumVars++);
      unsigned SavedVars = NumVars;
      std::string Out =
          indent() + "var " + Counter + ": int = 0;\n" + indent() +
          formatString("while (%s < %llu)\n", Counter.c_str(),
                       static_cast<unsigned long long>(Rng.nextBelow(4)));
      ++Depth;
      std::string Inner = indent() + "{\n";
      ++Depth;
      Inner += statement();
      Inner += indent() + Counter + " = " + Counter + " + 1;\n";
      --Depth;
      Inner += indent() + "}\n";
      --Depth;
      NumVars = SavedVars;
      return Out + Inner;
    }
    case 4: // Error site behind a condition (so bugs exist to find).
      if (Depth < 3)
        return indent() + "if (" + boolExpr(0) + ") { error(\"bug\"); }\n";
      [[fallthrough]];
    default:
      if (NumVars > 0)
        return indent() +
               formatString("v%u",
                            static_cast<unsigned>(Rng.nextBelow(NumVars))) +
               " = " + intExpr(1) + ";\n";
      return indent() + "var v0: int = " + intExpr(1) + ";\n";
    }
  }

  std::string block(unsigned NumStmts) {
    std::string Out = indent() + "{\n";
    ++Depth;
    // A guaranteed declaration keeps "v0" references valid in degraded
    // branches.
    if (NumVars == 0)
      Out += indent() + "var v" + std::to_string(NumVars++) +
             ": int = 0;\n";
    for (unsigned I = 0; I != NumStmts; ++I)
      Out += statement();
    --Depth;
    Out += indent() + "}\n";
    return Out;
  }

  RandomGen Rng;
  unsigned Depth = 0;
  unsigned NumVars = 0;
};

lang::Program compileOrDie(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Source, Diags);
  EXPECT_TRUE(Prog.has_value()) << Diags.render() << "\n" << Source;
  return Prog ? std::move(*Prog) : lang::Program{};
}

class TheoremPropertyTest : public ::testing::TestWithParam<uint64_t> {};

//===----------------------------------------------------------------------===//
// Theorem 2/3: path-constraint soundness as a replay property.
//===----------------------------------------------------------------------===//

TEST_P(TheoremPropertyTest, SoundPathConstraintsReplayTheSameTrace) {
  RandomGen Rng(GetParam() * 7919 + 1);
  for (int ProgIdx = 0; ProgIdx != 6; ++ProgIdx) {
    ProgramGenerator Gen(GetParam() * 131 + ProgIdx);
    std::string Source = Gen.generate();
    lang::Program Prog = compileOrDie(Source);
    if (Prog.Functions.empty())
      continue;
    NativeRegistry Natives;
    Natives.registerDefaultHashes();

    for (ConcretizationPolicy Policy : {ConcretizationPolicy::Sound,
                                        ConcretizationPolicy::SoundDelayed}) {
      smt::TermArena Arena;
      ExecOptions Options;
      Options.Policy = Policy;
      SymbolicExecutor Exec(Prog, Natives, Arena, Options);

      TestInput Input;
      Input.Cells = {Rng.nextInRange(-30, 30), Rng.nextInRange(-30, 30),
                     Rng.nextInRange(-30, 30)};
      PathResult PR = Exec.execute("main", Input);
      if (PR.PC.Truncated || PR.PC.empty())
        continue;

      // Any model of the full path constraint must replay the same trace
      // (Definition 1 / Theorem 2).
      smt::Solver Solver(Arena);
      smt::SatAnswer Answer = Solver.check(PR.PC.conjunction(Arena));
      if (!Answer.isSat())
        continue; // The original input is a witness, but the solver may
                  // time out; Unknown is acceptable, Unsat impossible.
      TestInput Replay = Input;
      InputLayout Layout(*Prog.findFunction("main"));
      for (unsigned I = 0; I != Layout.size(); ++I)
        if (auto V = Answer.ModelValue.varValue(
                Arena.getOrCreateVar(Layout.name(I))))
          Replay.Cells[I] = *V;

      Interpreter Interp(Prog, Natives);
      RunResult Concrete = Interp.run("main", Replay);
      ASSERT_EQ(Concrete.Trace, PR.Run.Trace)
          << "policy " << policyName(Policy) << " produced an unsound path "
          << "constraint for input " << Input.toString() << " (replayed "
          << Replay.toString() << ")\n"
          << Source << "\n"
          << PR.PC.toString(Arena);
    }
  }
}

TEST_P(TheoremPropertyTest, CoExecutorAgreesWithInterpreter) {
  // The co-executor's concrete half must be observationally identical to
  // the plain interpreter on every policy.
  RandomGen Rng(GetParam() * 31 + 5);
  for (int ProgIdx = 0; ProgIdx != 5; ++ProgIdx) {
    ProgramGenerator Gen(GetParam() * 1009 + ProgIdx + 100);
    lang::Program Prog = compileOrDie(Gen.generate());
    if (Prog.Functions.empty())
      continue;
    NativeRegistry Natives;
    Natives.registerDefaultHashes();
    Interpreter Interp(Prog, Natives);

    for (int Trial = 0; Trial != 4; ++Trial) {
      TestInput Input;
      Input.Cells = {Rng.nextInRange(-50, 50), Rng.nextInRange(-50, 50),
                     Rng.nextInRange(-50, 50)};
      RunResult Expected = Interp.run("main", Input);
      for (ConcretizationPolicy Policy :
           {ConcretizationPolicy::Unsound, ConcretizationPolicy::Sound,
            ConcretizationPolicy::SoundDelayed,
            ConcretizationPolicy::HigherOrder}) {
        smt::TermArena Arena;
        ExecOptions Options;
        Options.Policy = Policy;
        SymbolicExecutor Exec(Prog, Natives, Arena, Options);
        PathResult PR = Exec.execute("main", Input);
        ASSERT_EQ(PR.Run.Status, Expected.Status);
        ASSERT_EQ(PR.Run.Trace, Expected.Trace);
        ASSERT_EQ(PR.Run.ReturnValue, Expected.ReturnValue);
      }
    }
  }
}

TEST_P(TheoremPropertyTest, HigherOrderSearchNeverDiverges) {
  // Theorem 3 + validity-based generation: no divergences, ever.
  ProgramGenerator Gen(GetParam() * 733 + 17);
  lang::Program Prog = compileOrDie(Gen.generate());
  if (Prog.Functions.empty())
    return;
  NativeRegistry Natives;
  Natives.registerDefaultHashes();

  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 24;
  Options.Seed = GetParam();
  DirectedSearch Search(Prog, Natives, "main", Options);
  SearchResult R = Search.run();
  EXPECT_EQ(R.Divergences, 0u);
}

TEST_P(TheoremPropertyTest, SoundSearchNeverDiverges) {
  ProgramGenerator Gen(GetParam() * 733 + 18);
  lang::Program Prog = compileOrDie(Gen.generate());
  if (Prog.Functions.empty())
    return;
  NativeRegistry Natives;
  Natives.registerDefaultHashes();

  for (ConcretizationPolicy Policy : {ConcretizationPolicy::Sound,
                                      ConcretizationPolicy::SoundDelayed}) {
    SearchOptions Options;
    Options.Policy = Policy;
    Options.MaxTests = 24;
    Options.Seed = GetParam();
    DirectedSearch Search(Prog, Natives, "main", Options);
    SearchResult R = Search.run();
    EXPECT_EQ(R.Divergences, 0u) << policyName(Policy);
  }
}

//===----------------------------------------------------------------------===//
// Theorem 4 (Simulation): SC-satisfiable alternates admit HO strategies.
//===----------------------------------------------------------------------===//

TEST_P(TheoremPropertyTest, HigherOrderSimulatesSoundConcretization) {
  RandomGen Rng(GetParam() * 47 + 3);
  for (int ProgIdx = 0; ProgIdx != 5; ++ProgIdx) {
    ProgramGenerator Gen(GetParam() * 577 + ProgIdx + 40);
    lang::Program Prog = compileOrDie(Gen.generate());
    if (Prog.Functions.empty())
      continue;
    NativeRegistry Natives;
    Natives.registerDefaultHashes();

    TestInput Input;
    Input.Cells = {Rng.nextInRange(-30, 30), Rng.nextInRange(-30, 30),
                   Rng.nextInRange(-30, 30)};

    // One shared arena so constraints are comparable.
    smt::TermArena Arena;
    smt::SampleTable Samples;

    ExecOptions SC;
    SC.Policy = ConcretizationPolicy::Sound;
    SymbolicExecutor ScExec(Prog, Natives, Arena, SC);
    PathResult ScPR = ScExec.execute("main", Input);

    ExecOptions HO;
    HO.Policy = ConcretizationPolicy::HigherOrder;
    SymbolicExecutor HoExec(Prog, Natives, Arena, HO);
    PathResult HoPR = HoExec.execute("main", Input, &Samples);

    if (ScPR.PC.Truncated || HoPR.PC.Truncated)
      continue;

    for (size_t ScPos : ScPR.PC.negatablePositions()) {
      // Match the HO entry produced by the same trace event.
      uint32_t Event = ScPR.PC.Entries[ScPos].TraceIndex;
      size_t HoPos = HoPR.PC.size();
      for (size_t I = 0; I != HoPR.PC.size(); ++I)
        if (!HoPR.PC.Entries[I].IsConcretization &&
            HoPR.PC.Entries[I].TraceIndex == Event)
          HoPos = I;
      ASSERT_NE(HoPos, HoPR.PC.size())
          << "higher-order execution lost a constraint that sound "
             "concretization kept";

      smt::Solver Solver(Arena);
      smt::SatAnswer ScAnswer =
          Solver.check(ScPR.PC.alternate(Arena, ScPos));
      if (!ScAnswer.isSat())
        continue;

      ValiditySolver Validity(Arena, Samples);
      ValidityAnswer HoAnswer =
          Validity.checkPost(HoPR.PC.alternate(Arena, HoPos));
      EXPECT_EQ(HoAnswer.Status, ValidityStatus::Valid)
          << "Theorem 4 violated at trace event " << Event << ":\nSC: "
          << Arena.toString(ScPR.PC.alternate(Arena, ScPos)) << "\nHO: "
          << Arena.toString(HoPR.PC.alternate(Arena, HoPos));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

} // namespace
