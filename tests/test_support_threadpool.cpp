//===- tests/test_support_threadpool.cpp - Worker pool unit tests ----------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace hotg::support;

namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Sum{0};
  std::vector<std::future<void>> Futures;
  for (int I = 1; I <= 100; ++I)
    Futures.push_back(Pool.submit([&Sum, I](unsigned) {
      Sum.fetch_add(I, std::memory_order_relaxed);
    }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPool, WorkerIndicesAreStableAndInRange) {
  ThreadPool Pool(3);
  std::mutex M;
  std::set<unsigned> Seen;
  std::vector<std::future<void>> Futures;
  for (int I = 0; I != 64; ++I)
    Futures.push_back(Pool.submit([&](unsigned W) {
      std::lock_guard<std::mutex> Lock(M);
      Seen.insert(W);
    }));
  for (auto &F : Futures)
    F.get();
  ASSERT_FALSE(Seen.empty());
  EXPECT_LT(*Seen.rbegin(), 3u) << "indices must stay below the pool size";
}

TEST(ThreadPool, FuturesCarryTaskExceptions) {
  ThreadPool Pool(2);
  auto Ok = Pool.submit([](unsigned) {});
  auto Bad = Pool.submit(
      [](unsigned) { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(Ok.get());
  EXPECT_THROW(Bad.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsTheQueue) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 32; ++I)
      Pool.submit([&Ran](unsigned) {
        Ran.fetch_add(1, std::memory_order_relaxed);
      });
    // No explicit waits: the destructor must run every queued task.
  }
  EXPECT_EQ(Ran.load(), 32);
}

TEST(ThreadPool, BusyNanosAccumulates) {
  ThreadPool Pool(2);
  auto F = Pool.submit([](unsigned) {
    // Touch the clock so even a coarse timer sees nonzero work.
    volatile uint64_t X = 0;
    for (int I = 0; I != 100000; ++I)
      X = X + I;
  });
  F.get();
  EXPECT_GT(Pool.busyNanos(), 0u);
}

} // namespace
