//===- tests/test_lang_lexer.cpp - MiniLang lexer unit tests ----------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::lang;

namespace {

std::vector<Token> lex(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<Token> lexOk(std::string_view Source) {
  DiagnosticEngine Diags;
  auto Tokens = lex(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
  return Tokens;
}

TEST(LangLexer, EmptyInputYieldsEOF) {
  auto Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::EndOfFile));
}

TEST(LangLexer, Keywords) {
  auto Tokens = lexOk("fun extern var if else while return assert error "
                      "true false int bool");
  std::vector<TokenKind> Expected = {
      TokenKind::KwFun,    TokenKind::KwExtern, TokenKind::KwVar,
      TokenKind::KwIf,     TokenKind::KwElse,   TokenKind::KwWhile,
      TokenKind::KwReturn, TokenKind::KwAssert, TokenKind::KwError,
      TokenKind::KwTrue,   TokenKind::KwFalse,  TokenKind::KwInt,
      TokenKind::KwBool,   TokenKind::EndOfFile};
  ASSERT_EQ(Tokens.size(), Expected.size());
  for (size_t I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(LangLexer, IdentifiersAndIntegers) {
  auto Tokens = lexOk("foo _bar x1 42 007");
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "x1");
  EXPECT_EQ(Tokens[3].IntValue, 42);
  EXPECT_EQ(Tokens[4].IntValue, 7);
}

TEST(LangLexer, OperatorsIncludingTwoCharForms) {
  auto Tokens = lexOk("== != <= >= < > = ! && || -> - + * / %");
  std::vector<TokenKind> Expected = {
      TokenKind::EqEq,      TokenKind::NotEq,   TokenKind::LessEq,
      TokenKind::GreaterEq, TokenKind::Less,    TokenKind::Greater,
      TokenKind::Assign,    TokenKind::Bang,    TokenKind::AmpAmp,
      TokenKind::PipePipe,  TokenKind::Arrow,   TokenKind::Minus,
      TokenKind::Plus,      TokenKind::Star,    TokenKind::Slash,
      TokenKind::Percent,   TokenKind::EndOfFile};
  ASSERT_EQ(Tokens.size(), Expected.size());
  for (size_t I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(Tokens[I].Kind, Expected[I]) << "token " << I;
}

TEST(LangLexer, LineCommentsAreSkipped) {
  auto Tokens = lexOk("x // comment with if while 42\ny");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "x");
  EXPECT_EQ(Tokens[1].Text, "y");
}

TEST(LangLexer, LocationsTrackLinesAndColumns) {
  auto Tokens = lexOk("a\n  b");
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(LangLexer, StringLiteralsWithEscapes) {
  auto Tokens = lexOk(R"("hello" "a\nb\"c")");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "hello");
  EXPECT_EQ(Tokens[1].Text, "a\nb\"c");
}

TEST(LangLexer, CharLiteralsAreIntegers) {
  auto Tokens = lexOk("'a' '\\n' '\\0'");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::IntLiteral));
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, '\n');
  EXPECT_EQ(Tokens[2].IntValue, 0);
}

TEST(LangLexer, UnexpectedCharacterReportsError) {
  DiagnosticEngine Diags;
  lex("x @ y", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LangLexer, UnterminatedStringReportsError) {
  DiagnosticEngine Diags;
  lex("\"abc", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LangLexer, SingleAmpersandReportsError) {
  DiagnosticEngine Diags;
  lex("a & b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LangLexer, OverflowingIntegerReportsError) {
  DiagnosticEngine Diags;
  lex("99999999999999999999999999", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LangLexer, MaxInt64Lexes) {
  auto Tokens = lexOk("9223372036854775807");
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].IntValue, INT64_MAX);
}

} // namespace
