//===- tests/test_support_faults.cpp - Deadline + fault-injection units ----------===//
//
// Unit tests for the robustness primitives (docs/robustness.md): the
// monotonic Deadline / CancelToken stop controls and the deterministic
// FaultInjector harness. The central property pinned down here is
// determinism: a fault decision is a pure function of (seed, site, probe
// index), so re-parsing the same spec replays the exact same fire set.
//
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <vector>

using namespace hotg;
using namespace hotg::support;

namespace {

TEST(DeadlineTest, DefaultIsInactiveAndNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.active());
  EXPECT_FALSE(D.expired());
}

TEST(DeadlineTest, ZeroBudgetIsActiveAndExpiresImmediately) {
  Deadline D = Deadline::afterNanos(0);
  EXPECT_TRUE(D.active());
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingNanos(), 0);
}

TEST(DeadlineTest, GenerousBudgetIsActiveButNotExpired) {
  Deadline D = Deadline::afterMillis(60 * 60 * 1000);
  EXPECT_TRUE(D.active());
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingNanos(), 0);
}

TEST(DeadlineTest, HugeBudgetDoesNotOverflow) {
  Deadline D = Deadline::afterNanos(INT64_MAX);
  EXPECT_TRUE(D.active());
  EXPECT_FALSE(D.expired());
}

TEST(CancelTokenTest, DefaultTokenIsInvalidAndNeverCancelled) {
  CancelToken Token;
  EXPECT_FALSE(Token.valid());
  EXPECT_FALSE(Token.cancelled());
}

TEST(CancelTokenTest, RequestCancelFlipsEveryCopy) {
  CancelToken Token = CancelToken::create();
  CancelToken Copy = Token;
  EXPECT_TRUE(Token.valid());
  EXPECT_FALSE(Token.cancelled());
  Copy.requestCancel();
  EXPECT_TRUE(Token.cancelled());
  EXPECT_TRUE(Copy.cancelled());
}

TEST(StopReasonTest, CancellationWinsOverExpiredDeadline) {
  // Classification must be stable: when both controls tripped, report the
  // explicit user action, not the timer.
  CancelToken Token = CancelToken::create();
  Token.requestCancel();
  EXPECT_EQ(stopRequested(Deadline::afterNanos(0), Token),
            StopReason::Cancelled);
  EXPECT_EQ(stopRequested(Deadline::afterNanos(0), CancelToken()),
            StopReason::DeadlineExpired);
  EXPECT_EQ(stopRequested(Deadline(), CancelToken()), StopReason::None);
}

TEST(StopReasonTest, NamesAreStable) {
  EXPECT_STREQ(stopReasonName(StopReason::None), "none");
  EXPECT_STREQ(stopReasonName(StopReason::DeadlineExpired),
               "deadline-expired");
  EXPECT_STREQ(stopReasonName(StopReason::Cancelled), "cancelled");
  EXPECT_STREQ(stopReasonName(StopReason::TestBudget), "test-budget");
}

TEST(FaultInjectorTest, ParseRejectsMalformedSpecs) {
  std::string Error;
  EXPECT_EQ(FaultInjector::parse("", Error), nullptr);
  EXPECT_EQ(FaultInjector::parse("bogus:0.5:1", Error), nullptr);
  EXPECT_NE(Error.find("bogus"), std::string::npos);
  EXPECT_EQ(FaultInjector::parse("worker-dispatch", Error), nullptr);
  EXPECT_EQ(FaultInjector::parse("worker-dispatch:nope:1", Error), nullptr);
  EXPECT_EQ(FaultInjector::parse("worker-dispatch:1.5:1", Error), nullptr);
  EXPECT_EQ(FaultInjector::parse("worker-dispatch:-0.1:1", Error), nullptr);
}

TEST(FaultInjectorTest, ParseArmsOnlyTheNamedSites) {
  std::string Error;
  auto Injector =
      FaultInjector::parse("worker-dispatch:0.5:7,solver-check:1.0:9", Error);
  ASSERT_NE(Injector, nullptr) << Error;
  EXPECT_TRUE(Injector->armed(FaultSite::WorkerDispatch));
  EXPECT_TRUE(Injector->armed(FaultSite::SolverCheck));
  EXPECT_FALSE(Injector->armed(FaultSite::CachePublish));
  EXPECT_FALSE(Injector->armed(FaultSite::ArenaDelta));
  // Unarmed sites never fire and do not count probes.
  EXPECT_FALSE(Injector->shouldFail(FaultSite::CachePublish));
  EXPECT_EQ(Injector->probes(FaultSite::CachePublish), 0u);
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFiresProbabilityOneAlwaysDoes) {
  FaultInjector Never, Always;
  Never.arm(FaultSite::SolverCheck, 0.0, 42);
  Always.arm(FaultSite::SolverCheck, 1.0, 42);
  for (int I = 0; I != 200; ++I) {
    EXPECT_FALSE(Never.shouldFail(FaultSite::SolverCheck));
    EXPECT_TRUE(Always.shouldFail(FaultSite::SolverCheck));
  }
  EXPECT_EQ(Never.fired(FaultSite::SolverCheck), 0u);
  EXPECT_EQ(Always.fired(FaultSite::SolverCheck), 200u);
  EXPECT_EQ(Always.probes(FaultSite::SolverCheck), 200u);
}

TEST(FaultInjectorTest, SameSpecReplaysTheExactSameFireSet) {
  std::string Error;
  auto A = FaultInjector::parse("cache-publish:0.3:1234", Error);
  auto B = FaultInjector::parse("cache-publish:0.3:1234", Error);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  std::vector<bool> FiresA, FiresB;
  for (int I = 0; I != 500; ++I) {
    FiresA.push_back(A->shouldFail(FaultSite::CachePublish));
    FiresB.push_back(B->shouldFail(FaultSite::CachePublish));
  }
  EXPECT_EQ(FiresA, FiresB);
  // ~30% of 500 probes: demand the rate is at least in the right ballpark
  // (a deterministic sequence, so this cannot flake).
  EXPECT_GT(A->fired(FaultSite::CachePublish), 75u);
  EXPECT_LT(A->fired(FaultSite::CachePublish), 250u);
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentFireSets) {
  FaultInjector A, B;
  A.arm(FaultSite::ArenaDelta, 0.5, 1);
  B.arm(FaultSite::ArenaDelta, 0.5, 2);
  std::vector<bool> FiresA, FiresB;
  for (int I = 0; I != 200; ++I) {
    FiresA.push_back(A.shouldFail(FaultSite::ArenaDelta));
    FiresB.push_back(B.shouldFail(FaultSite::ArenaDelta));
  }
  EXPECT_NE(FiresA, FiresB);
}

TEST(FaultInjectorTest, MaybeInjectFaultThrowsWithSiteAndName) {
  FaultInjector Injector;
  Injector.arm(FaultSite::WorkerDispatch, 1.0, 5);
  setFaultInjector(&Injector);
  try {
    maybeInjectFault(FaultSite::WorkerDispatch);
    setFaultInjector(nullptr);
    FAIL() << "expected FaultInjected";
  } catch (const FaultInjected &E) {
    setFaultInjector(nullptr);
    EXPECT_EQ(E.site(), FaultSite::WorkerDispatch);
    EXPECT_NE(std::string(E.what()).find("worker-dispatch"),
              std::string::npos);
  }
  // With no injector installed the hook is a no-op.
  EXPECT_NO_THROW(maybeInjectFault(FaultSite::WorkerDispatch));
}

TEST(FaultInjectorTest, SummaryListsArmedSitesWithCounts) {
  FaultInjector Injector;
  Injector.arm(FaultSite::SolverCheck, 1.0, 1);
  (void)Injector.shouldFail(FaultSite::SolverCheck);
  (void)Injector.shouldFail(FaultSite::SolverCheck);
  std::string Summary = Injector.summary();
  EXPECT_NE(Summary.find("solver-check"), std::string::npos);
  EXPECT_NE(Summary.find("2"), std::string::npos);
  EXPECT_EQ(Summary.find("worker-dispatch"), std::string::npos);
}

} // namespace
