//===- tests/test_property_validity.cpp - Validity solver properties --------------===//
//
// Randomized properties of the strategy solver:
//  * planted-strategy formulas (solvable through recorded samples) are
//    always found Valid, and the returned strategy model satisfies the
//    formula under the sample semantics;
//  * formulas whose only support depends non-trivially on an unsampled
//    application are never declared Valid (∀-soundness);
//  * Valid answers are stable under sample-table growth (monotonicity).
//
//===----------------------------------------------------------------------===//

#include "core/ValiditySolver.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::smt;

namespace {

class ValidityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValidityPropertyTest, PlantedSampleStrategiesAreFound) {
  RandomGen Rng(GetParam() * 101 + 13);
  for (int Round = 0; Round != 25; ++Round) {
    TermArena Arena;
    SampleTable Samples;
    FuncId H = Arena.getOrCreateFunc("h", 1);

    // Plant N samples with distinct arguments.
    unsigned N = 2 + static_cast<unsigned>(Rng.nextBelow(5));
    std::vector<int64_t> Args, Outs;
    for (unsigned I = 0; I != N; ++I) {
      Args.push_back(static_cast<int64_t>(I) * 7 +
                     Rng.nextInRange(0, 6)); // Distinct strides.
      Outs.push_back(Rng.nextInRange(-1000, 1000));
      Samples.record(H, {Args.back()}, Outs.back());
    }

    // Formula: x = h(y) ∧ z = h(y) + k, solvable by binding h(y) to any
    // sample (pick one to compute the planted witness).
    size_t Pick = Rng.nextBelow(N);
    int64_t K = Rng.nextInRange(-50, 50);
    TermId X = Arena.mkVar("x");
    TermId Y = Arena.mkVar("y");
    TermId Z = Arena.mkVar("z");
    TermId App = Arena.mkUFApp(H, {{Y}});
    TermId F = Arena.mkAnd(
        Arena.mkEq(X, App),
        Arena.mkEq(Z, Arena.mkAdd(App, Arena.mkIntConst(K))));

    ValiditySolver Solver(Arena, Samples);
    ValidityAnswer A = Solver.checkPost(F);
    ASSERT_EQ(A.Status, ValidityStatus::Valid)
        << "round " << Round << ": " << Arena.toString(F);

    // The strategy must bind y to a sampled argument and satisfy the
    // formula under the sample interpretation.
    A.ModelValue.attachSamples(&Samples);
    auto Holds = A.ModelValue.evalBoolChecked(Arena, F);
    ASSERT_TRUE(Holds.has_value())
        << "strategy uses an unsampled point";
    EXPECT_TRUE(*Holds);
    (void)Pick;
    (void)Outs;
  }
}

TEST_P(ValidityPropertyTest, UnsampledDependenceIsNeverValid) {
  RandomGen Rng(GetParam() * 977 + 29);
  for (int Round = 0; Round != 25; ++Round) {
    TermArena Arena;
    SampleTable Samples;
    FuncId H = Arena.getOrCreateFunc("h", 1);
    FuncId G = Arena.getOrCreateFunc("g", 1);
    // Samples only for g; the formula constrains h.
    for (int I = 0; I != 3; ++I)
      Samples.record(G, {I}, Rng.nextInRange(-9, 9));

    TermId X = Arena.mkVar("x");
    TermId Y = Arena.mkVar("y");
    TermId App = Arena.mkUFApp(H, {{Y}});
    // h(y) ⋈ e — cannot be forced for any relation that depends on the
    // universal value.
    TermId F;
    switch (Rng.nextBelow(3)) {
    case 0:
      F = Arena.mkEq(App, Arena.mkIntConst(Rng.nextInRange(-99, 99)));
      break;
    case 1:
      F = Arena.mkGt(App, X);
      break;
    default:
      F = Arena.mkAnd(Arena.mkEq(X, App),
                      Arena.mkLe(X, Arena.mkIntConst(5)));
      break;
    }
    ValidityOptions Options;
    Options.AllowLearning = false; // One-shot semantics.
    ValiditySolver Solver(Arena, Samples, Options);
    EXPECT_NE(Solver.checkPost(F).Status, ValidityStatus::Valid)
        << Arena.toString(F);
  }
}

TEST_P(ValidityPropertyTest, ValidityIsMonotoneInSamples) {
  // Adding samples can only turn NotValid/NeedsSamples into Valid, never
  // the reverse (the antecedent A only gains conjuncts the real function
  // satisfies).
  RandomGen Rng(GetParam() * 31 + 1);
  TermArena Arena;
  FuncId H = Arena.getOrCreateFunc("h", 1);
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId F = Arena.mkAnd(Arena.mkEq(X, Arena.mkUFApp(H, {{Y}})),
                         Arena.mkGe(X, Arena.mkIntConst(0)));

  SampleTable Samples;
  bool WasValid = false;
  for (int Step = 0; Step != 8; ++Step) {
    ValiditySolver Solver(Arena, Samples);
    bool IsValid = Solver.checkPost(F).Status == ValidityStatus::Valid;
    EXPECT_TRUE(!WasValid || IsValid)
        << "validity regressed after adding samples at step " << Step;
    WasValid = IsValid;
    // Half the samples are useless (negative outputs) to keep it honest.
    Samples.record(H, {Step}, Rng.chance(1, 2) ? Step * 3 : -Step - 1);
  }
  EXPECT_TRUE(WasValid) << "some recorded sample has a non-negative output";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidityPropertyTest,
                         ::testing::Values(3, 5, 7, 11, 13));

} // namespace
