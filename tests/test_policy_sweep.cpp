//===- tests/test_policy_sweep.cpp - Parameterized invariants over policies -------===//
//
// TEST_P sweeps: invariants that must hold for every concretization policy
// (and several budgets), run over the example corpus. These complement the
// per-example integration tests with breadth.
//
//===----------------------------------------------------------------------===//

#include "app/Examples.h"
#include "core/Search.h"
#include "dse/SymbolicExecutor.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

struct SweepParam {
  const char *Example;
  ConcretizationPolicy Policy;
};

std::string paramName(const ::testing::TestParamInfo<SweepParam> &Info) {
  std::string Name = Info.param.Example;
  Name += "_";
  Name += policyName(Info.param.Policy);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

class PolicySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PolicySweepTest, SearchInvariants) {
  ExampleProgram Example = exampleByName(GetParam().Example);
  lang::Program Prog = compileExample(Example);
  NativeRegistry Natives;
  registerExampleNatives(Natives);

  SearchOptions Options;
  Options.Policy = GetParam().Policy;
  Options.MaxTests = 20;
  Options.InitialInput = Example.InitialInput;
  DirectedSearch Search(Prog, Natives, Example.Entry, Options);
  SearchResult R = Search.run();

  // Budget respected; at least the initial run happened.
  EXPECT_GE(R.testsRun(), 1u);
  EXPECT_LE(R.testsRun(), 20u);

  // Coverage never exceeds the program's branch-direction space.
  EXPECT_LE(R.Cov.coveredDirections(), R.Cov.totalDirections());

  // Sound policies never diverge (Theorems 2/3); unsound may.
  if (GetParam().Policy != ConcretizationPolicy::Unsound)
    EXPECT_EQ(R.Divergences, 0u);

  // Every reported bug is reproducible with the concrete interpreter.
  Interpreter Interp(Prog, Natives);
  for (const BugRecord &Bug : R.Bugs) {
    RunResult Replay = Interp.run(Example.Entry, Bug.Input);
    EXPECT_EQ(Replay.Status, Bug.Status)
        << "bug input " << Bug.Input.toString() << " did not reproduce";
    if (Bug.Status == RunStatus::ErrorHit) {
      ASSERT_TRUE(Replay.Error.has_value());
      EXPECT_EQ(Replay.Error->Site, Bug.Site);
    }
  }

  // Test records are consistent: every diverged record comes from a
  // derived (non-initial) test; intermediate runs only under HigherOrder.
  if (!R.Tests.empty())
    EXPECT_FALSE(R.Tests.front().Diverged) << "the seed test cannot diverge";
  for (const TestRecord &T : R.Tests)
    if (T.Intermediate)
      EXPECT_EQ(GetParam().Policy, ConcretizationPolicy::HigherOrder);
}

std::vector<SweepParam> allParams() {
  std::vector<SweepParam> Params;
  for (const char *Name :
       {"obscure", "foo", "foo_bis", "bar", "pub", "eq_pair", "offset",
        "assign_then_test", "chained_hash", "nonlinear"})
    for (ConcretizationPolicy Policy :
         {ConcretizationPolicy::Unsound, ConcretizationPolicy::Sound,
          ConcretizationPolicy::SoundDelayed,
          ConcretizationPolicy::HigherOrder})
      Params.push_back({Name, Policy});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(Examples, PolicySweepTest,
                         ::testing::ValuesIn(allParams()), paramName);

//===----------------------------------------------------------------------===//
// Per-policy executor invariants on the example corpus.
//===----------------------------------------------------------------------===//

class ExecutorSweepTest
    : public ::testing::TestWithParam<ConcretizationPolicy> {};

TEST_P(ExecutorSweepTest, PathConstraintSatisfiedByOwnInput) {
  // The generating input is always a model of its own path constraint
  // (completeness direction of Definition 2 restricted to the run itself).
  for (const ExampleProgram &Example : allExamples()) {
    lang::Program Prog = compileExample(Example);
    NativeRegistry Natives;
    registerExampleNatives(Natives);
    smt::TermArena Arena;
    smt::SampleTable Samples;

    ExecOptions Options;
    Options.Policy = GetParam();
    SymbolicExecutor Exec(Prog, Natives, Arena, Options);
    TestInput Input = Example.InitialInput ? *Example.InitialInput
                                           : TestInput{{0, 0}};
    PathResult PR = Exec.execute(Example.Entry, Input, &Samples);

    smt::Model M;
    M.attachSamples(&Samples);
    lang::Program &P = Prog;
    InputLayout Layout(*P.findFunction(Example.Entry));
    for (unsigned I = 0; I != Layout.size(); ++I)
      M.setVar(Arena.getOrCreateVar(Layout.name(I)), Input.Cells[I]);

    for (const dse::PathEntry &E : PR.PC.Entries) {
      auto V = M.evalBoolChecked(Arena, E.Constraint);
      // Under Unsound/Sound the constraint may reference only inputs and
      // constants, so checked evaluation succeeds; under HigherOrder the
      // IOF table supplies every application the run performed.
      ASSERT_TRUE(V.has_value())
          << Example.Name << ": constraint not evaluable: "
          << Arena.toString(E.Constraint);
      EXPECT_TRUE(*V) << Example.Name << " (" << policyName(GetParam())
                      << "): own input violates "
                      << Arena.toString(E.Constraint);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ExecutorSweepTest,
    ::testing::Values(ConcretizationPolicy::Unsound,
                      ConcretizationPolicy::Sound,
                      ConcretizationPolicy::SoundDelayed,
                      ConcretizationPolicy::HigherOrder),
    [](const ::testing::TestParamInfo<ConcretizationPolicy> &Info) {
      std::string Name = policyName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
