//===- tests/test_smt_incremental.cpp - Incremental solver contexts -------------===//
//
// The incremental architecture (docs/solver.md) rests on one invariant:
// a SolverContext's state is a fold over its asserted literal sequence,
// and pop() restores the exact pre-push state. These tests pin the
// invariant at three levels — the CongruenceClosure undo trail, the
// SolverContext scope stack (including retarget prefix sharing and the
// refutation memo), and a search-level differential sweep asserting that
// UseIncrementalContexts on/off produces identical SearchResults for
// every example program, policy, and exploration order.
//
//===----------------------------------------------------------------------===//

#include "app/Examples.h"
#include "core/Search.h"
#include "lang/Parser.h"
#include "smt/CongruenceClosure.h"
#include "smt/SolverContext.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::smt;

namespace {

//===----------------------------------------------------------------------===//
// CongruenceClosure undo trail
//===----------------------------------------------------------------------===//

class CongruenceTrailTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId Z = Arena.mkVar("z");
};

TEST_F(CongruenceTrailTest, RollbackUndoesMerges) {
  CongruenceClosure CC(Arena);
  ASSERT_TRUE(CC.assertEqual(X, Y));
  CongruenceClosure::Mark M = CC.mark();
  ASSERT_TRUE(CC.assertEqual(Y, Z));
  EXPECT_TRUE(CC.areEqual(X, Z));
  CC.rollbackTo(M);
  EXPECT_TRUE(CC.areEqual(X, Y)) << "pre-mark fact must survive";
  EXPECT_FALSE(CC.areEqual(X, Z)) << "in-scope merge must be undone";
}

TEST_F(CongruenceTrailTest, RollbackUndoesConflict) {
  CongruenceClosure CC(Arena);
  TermId One = Arena.mkIntConst(1);
  TermId Two = Arena.mkIntConst(2);
  ASSERT_TRUE(CC.assertEqual(X, One));
  CongruenceClosure::Mark M = CC.mark();
  EXPECT_FALSE(CC.assertEqual(X, Two)) << "1 = 2 is a conflict";
  EXPECT_TRUE(CC.inConflict());
  CC.rollbackTo(M);
  EXPECT_FALSE(CC.inConflict());
  ASSERT_TRUE(CC.constantOf(X).has_value());
  EXPECT_EQ(*CC.constantOf(X), 1);
}

TEST_F(CongruenceTrailTest, RollbackUndoesCongruenceAndDisequalities) {
  CongruenceClosure CC(Arena);
  FuncId F = Arena.getOrCreateFunc("f", 1);
  TermId FX = Arena.mkUFApp(F, std::vector<TermId>{X});
  TermId FY = Arena.mkUFApp(F, std::vector<TermId>{Y});
  CongruenceClosure::Mark M = CC.mark();
  ASSERT_TRUE(CC.assertEqual(X, Y));
  EXPECT_TRUE(CC.areEqual(FX, FY)) << "congruence must fire";
  ASSERT_TRUE(CC.assertDistinct(FX, Z));
  EXPECT_TRUE(CC.areDistinct(FX, Z));
  CC.rollbackTo(M);
  EXPECT_FALSE(CC.areEqual(FX, FY));
  EXPECT_FALSE(CC.areDistinct(FX, Z));
}

TEST_F(CongruenceTrailTest, MarksNestLifo) {
  CongruenceClosure CC(Arena);
  CongruenceClosure::Mark Outer = CC.mark();
  ASSERT_TRUE(CC.assertEqual(X, Y));
  CongruenceClosure::Mark Inner = CC.mark();
  ASSERT_TRUE(CC.assertEqual(Y, Z));
  CC.rollbackTo(Inner);
  EXPECT_TRUE(CC.areEqual(X, Y));
  EXPECT_FALSE(CC.areEqual(Y, Z));
  CC.rollbackTo(Outer);
  EXPECT_FALSE(CC.areEqual(X, Y));
}

//===----------------------------------------------------------------------===//
// SolverContext scopes: the fold invariant
//===----------------------------------------------------------------------===//

class IncrementalContextTest : public ::testing::Test {
protected:
  TermArena Arena;
  TermId X = Arena.mkVar("x");
  TermId Y = Arena.mkVar("y");
  TermId Z = Arena.mkVar("z");

  TermId eqc(TermId T, int64_t C) { return Arena.mkEq(T, Arena.mkIntConst(C)); }
  TermId ltc(TermId T, int64_t C) { return Arena.mkLt(T, Arena.mkIntConst(C)); }
  TermId gec(TermId T, int64_t C) { return Arena.mkGe(T, Arena.mkIntConst(C)); }

  /// Answers must agree down to the model's variable assignment — the
  /// bit-identical-result guarantee of docs/solver.md.
  static void expectSameAnswer(const SatAnswer &A, const SatAnswer &B,
                               const char *What) {
    EXPECT_EQ(A.Result, B.Result) << What;
    EXPECT_EQ(A.ModelValue.varAssignments(), B.ModelValue.varAssignments())
        << What;
  }

  SatAnswer freshConjunction(std::span<const TermId> Lits, SolverStats &S) {
    Solver Fresh(Arena);
    SatAnswer Answer = Fresh.checkConjunction(Lits);
    S = Fresh.stats();
    return Answer;
  }
};

TEST_F(IncrementalContextTest, FoldMatchesFreshSolver) {
  std::vector<TermId> Lits = {gec(X, 3), ltc(X, 10), eqc(Y, 7),
                              Arena.mkEq(Z, Arena.mkAdd(std::vector<TermId>{X, Y}))};
  SolverContext Ctx(Arena);
  for (TermId Lit : Lits) {
    Ctx.push();
    EXPECT_TRUE(Ctx.assertLiteral(Lit));
  }
  SolverStats CtxStats;
  SatAnswer Incremental = Ctx.check(CtxStats);

  SolverStats FreshStats;
  SatAnswer Fresh = freshConjunction(Lits, FreshStats);
  expectSameAnswer(Incremental, Fresh, "fold vs fresh");
  EXPECT_EQ(CtxStats.Decisions, FreshStats.Decisions);
  EXPECT_EQ(CtxStats.Propagations, FreshStats.Propagations);
}

TEST_F(IncrementalContextTest, PopRestoresExactState) {
  SolverContext Ctx(Arena);
  Ctx.push();
  ASSERT_TRUE(Ctx.assertLiteral(eqc(X, 5)));
  SolverStats Before;
  SatAnswer First = Ctx.check(Before);
  ASSERT_EQ(First.Result, SatResult::Sat);

  Ctx.push();
  ASSERT_TRUE(Ctx.assertLiteral(eqc(X, 6)));
  SolverStats Conflicted;
  EXPECT_EQ(Ctx.check(Conflicted).Result, SatResult::Unsat);
  Ctx.pop();

  SolverStats After;
  SatAnswer Second = Ctx.check(After);
  expectSameAnswer(First, Second, "check after pop");
  EXPECT_EQ(Before.Decisions, After.Decisions)
      << "pop must restore the exact pre-push search state";
  EXPECT_EQ(Before.Propagations, After.Propagations);
}

TEST_F(IncrementalContextTest, RetargetReusesCommonPrefix) {
  std::vector<TermId> Prefix = {gec(X, 0), ltc(X, 100), eqc(Y, 7)};
  std::vector<TermId> SibA = Prefix;
  SibA.push_back(ltc(Z, 5));
  std::vector<TermId> SibB = Prefix;
  SibB.push_back(gec(Z, 5));

  SolverContext Ctx(Arena);
  Ctx.retarget(SibA);
  SolverStats StatsA;
  SatAnswer AnsA = Ctx.check(StatsA);
  Ctx.retarget(SibB);
  SolverStats StatsB;
  SatAnswer AnsB = Ctx.check(StatsB);

  EXPECT_EQ(Ctx.contextStats().PrefixLiteralsReused, Prefix.size())
      << "the sibling retarget must keep the shared prefix asserted";

  SolverStats FreshA, FreshB;
  expectSameAnswer(AnsA, freshConjunction(SibA, FreshA), "sibling A");
  expectSameAnswer(AnsB, freshConjunction(SibB, FreshB), "sibling B");
  EXPECT_EQ(StatsA.Decisions, FreshA.Decisions);
  EXPECT_EQ(StatsB.Decisions, FreshB.Decisions);
}

TEST_F(IncrementalContextTest, PoisonIsScopedToItsFrame) {
  SolverContext Ctx(Arena);
  Ctx.push();
  ASSERT_TRUE(Ctx.assertLiteral(eqc(X, 4)));
  Ctx.push();
  // A disjunction is not a comparison literal: the context poisons itself
  // rather than guessing.
  EXPECT_FALSE(Ctx.assertLiteral(Arena.mkOr(eqc(Y, 1), eqc(Y, 2))));
  SolverStats Poisoned;
  EXPECT_EQ(Ctx.check(Poisoned).Result, SatResult::Unknown);
  Ctx.pop();
  SolverStats Clean;
  EXPECT_EQ(Ctx.check(Clean).Result, SatResult::Sat)
      << "poison must not outlive its owning scope";
}

TEST_F(IncrementalContextTest, RefutationMemoPreservesAnswers) {
  // Sibling queries over a shared prefix, memo on: answers and models must
  // be byte-identical to fresh solving; only the work may shrink.
  SolverOptions MemoOpts;
  MemoOpts.EnableRefutationMemo = true;
  SolverContext Ctx(Arena, MemoOpts);

  std::vector<TermId> Prefix = {gec(X, 0), ltc(X, 8), eqc(Y, 3),
                                Arena.mkEq(Z, Arena.mkAdd(std::vector<TermId>{X, Y}))};
  unsigned IncrementalDecisions = 0, FreshDecisions = 0;
  for (int64_t Flip = 0; Flip != 8; ++Flip) {
    std::vector<TermId> Query = Prefix;
    Query.push_back(Flip % 2 ? Arena.mkNe(X, Arena.mkIntConst(Flip))
                             : eqc(X, Flip));
    Ctx.retarget(Query);
    SolverStats QS;
    SatAnswer Incremental = Ctx.check(QS);
    IncrementalDecisions += QS.Decisions;

    SolverStats FS;
    SatAnswer Fresh = freshConjunction(Query, FS);
    FreshDecisions += FS.Decisions;
    expectSameAnswer(Incremental, Fresh,
                     ("memo sibling #" + std::to_string(Flip)).c_str());
  }
  EXPECT_LE(IncrementalDecisions, FreshDecisions)
      << "the memo may only remove work, never add decisions";
}

TEST_F(IncrementalContextTest, CheckFormulaLeavesAssertionsUntouched) {
  SolverContext Ctx(Arena);
  Ctx.push();
  ASSERT_TRUE(Ctx.assertLiteral(eqc(X, 1)));
  size_t Scopes = Ctx.numScopes();
  size_t Lits = Ctx.numAssertedLiterals();

  // Disjunctive formulas route through scratch contexts.
  TermId Disjunctive = Arena.mkOr(eqc(Y, 1), eqc(Y, 2));
  SolverStats QS;
  SatAnswer Answer = Ctx.checkFormula(Disjunctive, QS);
  EXPECT_EQ(Answer.Result, SatResult::Sat);
  EXPECT_EQ(Ctx.numScopes(), Scopes);
  EXPECT_EQ(Ctx.numAssertedLiterals(), Lits);

  Solver Fresh(Arena);
  SatAnswer FreshAnswer = Fresh.check(Disjunctive);
  expectSameAnswer(Answer, FreshAnswer, "disjunctive scratch path");
}

TEST_F(IncrementalContextTest, CheckWithTelemetryFoldsCumulativeStats) {
  SolverContext Ctx(Arena);
  Ctx.push();
  ASSERT_TRUE(Ctx.assertLiteral(gec(X, 2)));
  SolverStats Cum;
  SatAnswer First = Ctx.checkWithTelemetry(Cum);
  EXPECT_EQ(First.Result, SatResult::Sat);
  EXPECT_EQ(Cum.Checks, 1u);
  SatAnswer Second = Ctx.checkWithTelemetry(Cum);
  expectSameAnswer(First, Second, "repeated check");
  EXPECT_EQ(Cum.Checks, 2u) << "cumulative stats must fold across queries";
}

TEST_F(IncrementalContextTest, SolverWrapperReportsScopeTraffic) {
  // The one-shot Solver API is a thin wrapper over a fresh context; its
  // stats must surface the context's scope accounting.
  Solver S(Arena);
  TermId F = Arena.mkAnd(std::vector<TermId>{gec(X, 1), ltc(X, 9), eqc(Y, 2)});
  ASSERT_EQ(S.check(F).Result, SatResult::Sat);
  EXPECT_EQ(S.stats().ScopePushes, 3u) << "one scope per literal";
  EXPECT_EQ(S.stats().PrefixLiteralsReused, 0u)
      << "a fresh context has no prefix to reuse";
}

//===----------------------------------------------------------------------===//
// Answer cache
//===----------------------------------------------------------------------===//

TEST_F(IncrementalContextTest, AnswerCacheReplaysIdenticalQueries) {
  // The frontier re-issues identical sibling queries (distinct parents
  // reaching the same branch points). With the answer cache on, a repeat
  // costs zero decisions and replays the byte-identical answer.
  SolverOptions Opts;
  Opts.EnableAnswerCache = true;
  SolverContext Ctx(Arena, Opts);
  std::vector<TermId> Query{gec(X, 3), ltc(X, 9), eqc(Y, 2)};

  SolverStats First;
  SatAnswer A = Ctx.checkFormula(Arena.mkAnd(Query), First);
  ASSERT_EQ(A.Result, SatResult::Sat);
  ASSERT_GT(First.Decisions, 0u) << "query must exercise the search";

  SolverStats Second;
  SatAnswer B = Ctx.checkFormula(Arena.mkAnd(Query), Second);
  expectSameAnswer(A, B, "cached replay");
  EXPECT_EQ(Second.Decisions, 0u) << "replay must not re-search";
  EXPECT_EQ(Ctx.contextStats().AnswerCacheHits, 1u);
  EXPECT_EQ(Ctx.contextStats().AnswerCacheMisses, 1u);

  // And the replay matches a from-scratch solve exactly.
  Solver Fresh(Arena);
  expectSameAnswer(Fresh.checkConjunction(Query), B, "replay vs fresh");
}

TEST_F(IncrementalContextTest, AnswerCacheKeyedOnSampleGeneration) {
  // The cache key includes the sample-table generation: the table is
  // append-only, so a grown table may decide more, and stale replays are
  // not allowed across generations.
  SampleTable Samples;
  SolverOptions Opts;
  Opts.Samples = &Samples;
  Opts.EnableAnswerCache = true;
  SolverContext Ctx(Arena, Opts);
  std::vector<TermId> Query{gec(X, 0), ltc(X, 4)};

  SolverStats First;
  ASSERT_EQ(Ctx.checkFormula(Arena.mkAnd(Query), First).Result,
            SatResult::Sat);
  FuncId F = Arena.getOrCreateFunc("h", 1);
  Samples.record(F, {7}, 42);

  SolverStats Second;
  ASSERT_EQ(Ctx.checkFormula(Arena.mkAnd(Query), Second).Result,
            SatResult::Sat);
  EXPECT_EQ(Ctx.contextStats().AnswerCacheHits, 0u)
      << "a new sample generation must invalidate the cache";
  EXPECT_EQ(Ctx.contextStats().AnswerCacheMisses, 2u);
  EXPECT_EQ(Second.Decisions, First.Decisions)
      << "the re-solve is a fresh fold over the same state";
}

TEST_F(IncrementalContextTest, AnswerCacheRespectsDecisionBudget) {
  // A replay is accepted only when a fresh run would have finished within
  // the caller's remaining decision budget; otherwise check() must fall
  // through and report the same budget exhaustion a fresh solver would.
  SolverOptions Opts;
  Opts.EnableAnswerCache = true;
  SolverContext Ctx(Arena, Opts);
  std::vector<TermId> Query{gec(X, 3), ltc(X, 9)};

  SolverStats First;
  ASSERT_EQ(Ctx.checkFormula(Arena.mkAnd(Query), First).Result,
            SatResult::Sat);
  ASSERT_GT(First.Decisions, 0u);

  SolverStats Exhausted;
  Exhausted.Decisions = Ctx.options().MaxDecisions;
  SatAnswer B = Ctx.checkFormula(Arena.mkAnd(Query), Exhausted);
  EXPECT_EQ(B.Result, SatResult::Unknown)
      << "an exhausted budget must not be papered over by a cached Sat";
}

//===----------------------------------------------------------------------===//
// Search-level differential sweep
//===----------------------------------------------------------------------===//

/// The deterministic slice of a SearchResult (scope/reuse counters are
/// schedule-descriptive and excluded; see docs/observability.md).
void expectSameSearchResult(const core::SearchResult &A,
                            const core::SearchResult &B, const char *What) {
  ASSERT_EQ(A.Tests.size(), B.Tests.size()) << What;
  for (size_t I = 0; I != A.Tests.size(); ++I) {
    EXPECT_EQ(A.Tests[I].Input.Cells, B.Tests[I].Input.Cells)
        << What << " test #" << I;
    EXPECT_EQ(A.Tests[I].Status, B.Tests[I].Status) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Diverged, B.Tests[I].Diverged) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Intermediate, B.Tests[I].Intermediate)
        << What << " #" << I;
  }
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size()) << What;
  for (size_t I = 0; I != A.Bugs.size(); ++I) {
    EXPECT_EQ(A.Bugs[I].Input.Cells, B.Bugs[I].Input.Cells) << What;
    EXPECT_EQ(A.Bugs[I].Status, B.Bugs[I].Status) << What;
    EXPECT_EQ(A.Bugs[I].Site, B.Bugs[I].Site) << What;
    EXPECT_EQ(A.Bugs[I].FoundAtTest, B.Bugs[I].FoundAtTest) << What;
  }
  EXPECT_TRUE(A.Cov == B.Cov) << What << ": coverage differs";
  EXPECT_EQ(A.Divergences, B.Divergences) << What;
  EXPECT_EQ(A.SolverCalls, B.SolverCalls) << What;
  EXPECT_EQ(A.ValidityCalls, B.ValidityCalls) << What;
  EXPECT_EQ(A.MultiStepRuns, B.MultiStepRuns) << What;
  EXPECT_EQ(A.SolverQueryStats.Checks, B.SolverQueryStats.Checks) << What;
  EXPECT_EQ(A.SolverQueryStats.SupportsExplored,
            B.SolverQueryStats.SupportsExplored)
      << What;
  EXPECT_EQ(A.SolverQueryStats.Decisions, B.SolverQueryStats.Decisions)
      << What;
  EXPECT_EQ(A.SolverQueryStats.Propagations, B.SolverQueryStats.Propagations)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.SupportsExplored,
            B.ValidityQueryStats.SupportsExplored)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsTried,
            B.ValidityQueryStats.GroundingsTried)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsPruned,
            B.ValidityQueryStats.GroundingsPruned)
      << What;
}

class IncrementalSearchSweep
    : public ::testing::TestWithParam<
          std::tuple<dse::ConcretizationPolicy, bool>> {};

TEST_P(IncrementalSearchSweep, MatchesFromScratchOnEveryExample) {
  auto [Policy, DepthFirst] = GetParam();
  for (const app::ExampleProgram &Example : app::allExamples()) {
    lang::Program Prog = app::compileExample(Example);
    interp::NativeRegistry Natives;
    app::registerExampleNatives(Natives);

    auto RunArm = [&](bool Incremental) {
      core::SearchOptions Options;
      Options.Policy = Policy;
      Options.MaxTests = 24;
      Options.InitialInput = Example.InitialInput;
      Options.SkipCoveredTargets = false;
      Options.Order = DepthFirst ? core::SearchOptions::OrderKind::DepthFirst
                                 : core::SearchOptions::OrderKind::BreadthFirst;
      Options.UseIncrementalContexts = Incremental;
      core::DirectedSearch Search(Prog, Natives, Example.Entry, Options);
      core::SearchResult Result = Search.run();
      return std::make_pair(std::move(Result), Search.exportSamples());
    };

    auto [Incremental, IncSamples] = RunArm(true);
    auto [FromScratch, FsSamples] = RunArm(false);
    expectSameSearchResult(Incremental, FromScratch, Example.Name.c_str());
    EXPECT_EQ(IncSamples, FsSamples)
        << Example.Name << ": learned IOF tables must match";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, IncrementalSearchSweep,
    ::testing::Combine(
        ::testing::Values(dse::ConcretizationPolicy::Unsound,
                          dse::ConcretizationPolicy::Sound,
                          dse::ConcretizationPolicy::SoundDelayed,
                          dse::ConcretizationPolicy::HigherOrder),
        ::testing::Bool()),
    [](const auto &Info) {
      std::string Name = dse::policyName(std::get<0>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + (std::get<1>(Info.param) ? "_dfs" : "_bfs");
    });

} // namespace
