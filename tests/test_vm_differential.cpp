//===- tests/test_vm_differential.cpp - VM vs interpreter byte identity ---------===//
//
// The acceptance contract of the bytecode VM (docs/minilang.md "Bytecode
// VM"): for every example program, every concretization policy and every
// worker count, a search run on the VM engine produces byte-identical
// output to the tree-walking reference pair — same tests, same bugs, same
// coverage, same solver-call counts — and a single shadow run produces the
// same path constraint down to the numeric term ids (which encodes the
// arena interning order, the strongest equivalence the term layer has).
//
//===----------------------------------------------------------------------===//

#include "app/Examples.h"
#include "core/Search.h"
#include "dse/SymbolicExecutor.h"
#include "lang/Parser.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

constexpr ConcretizationPolicy AllPolicies[] = {
    ConcretizationPolicy::Unsound, ConcretizationPolicy::Sound,
    ConcretizationPolicy::SoundDelayed, ConcretizationPolicy::HigherOrder};

/// Entry convention of the shipped example files: the lexer programs name
/// their entry lex_main; everything else uses main or the first function
/// (the hotg-run default).
std::string entryOf(const lang::Program &Prog) {
  if (Prog.findFunction("lex_main"))
    return "lex_main";
  if (Prog.findFunction("main"))
    return "main";
  return Prog.Functions.front()->Name;
}

std::vector<std::filesystem::path> examplePaths() {
  std::vector<std::filesystem::path> Paths;
  for (const auto &Entry :
       std::filesystem::directory_iterator(HOTG_EXAMPLES_DIR))
    if (Entry.path().extension() == ".ml")
      Paths.push_back(Entry.path());
  std::sort(Paths.begin(), Paths.end());
  EXPECT_FALSE(Paths.empty()) << "no examples under " << HOTG_EXAMPLES_DIR;
  return Paths;
}

lang::Program loadProgram(const std::filesystem::path &Path) {
  std::ifstream File(Path);
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Buffer.str(), Diags);
  if (!Prog) {
    ADD_FAILURE() << Path << " failed to parse:\n"
                  << Diags.render(Path.c_str());
    return {};
  }
  return std::move(*Prog);
}

/// Field-by-field identity of two search results. Cache traffic and
/// worker-failure tallies are schedule-dependent by contract and excluded;
/// everything else must match exactly.
void expectIdentical(const SearchResult &A, const SearchResult &B,
                     const std::string &Context) {
  ASSERT_EQ(A.Tests.size(), B.Tests.size()) << Context;
  for (size_t I = 0; I != A.Tests.size(); ++I) {
    EXPECT_EQ(A.Tests[I].Input.Cells, B.Tests[I].Input.Cells)
        << Context << " test " << I;
    EXPECT_EQ(A.Tests[I].Status, B.Tests[I].Status) << Context << " test " << I;
    EXPECT_EQ(A.Tests[I].Diverged, B.Tests[I].Diverged)
        << Context << " test " << I;
    EXPECT_EQ(A.Tests[I].Intermediate, B.Tests[I].Intermediate)
        << Context << " test " << I;
  }
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size()) << Context;
  for (size_t I = 0; I != A.Bugs.size(); ++I) {
    EXPECT_EQ(A.Bugs[I].Input.Cells, B.Bugs[I].Input.Cells)
        << Context << " bug " << I;
    EXPECT_EQ(A.Bugs[I].Status, B.Bugs[I].Status) << Context << " bug " << I;
    EXPECT_EQ(A.Bugs[I].Site, B.Bugs[I].Site) << Context << " bug " << I;
    EXPECT_EQ(A.Bugs[I].Message, B.Bugs[I].Message) << Context << " bug " << I;
    EXPECT_EQ(A.Bugs[I].FoundAtTest, B.Bugs[I].FoundAtTest)
        << Context << " bug " << I;
  }
  EXPECT_EQ(A.Cov.coveredDirections(), B.Cov.coveredDirections()) << Context;
  EXPECT_EQ(A.Cov.totalDirections(), B.Cov.totalDirections()) << Context;
  EXPECT_EQ(A.Divergences, B.Divergences) << Context;
  EXPECT_EQ(A.SolverCalls, B.SolverCalls) << Context;
  EXPECT_EQ(A.ValidityCalls, B.ValidityCalls) << Context;
  EXPECT_EQ(A.MultiStepRuns, B.MultiStepRuns) << Context;
  EXPECT_EQ(A.Stopped, B.Stopped) << Context;
}

SearchResult runSearch(const lang::Program &Prog,
                       const NativeRegistry &Natives,
                       const std::string &Entry, ConcretizationPolicy Policy,
                       unsigned Jobs, vm::EngineKind Engine) {
  SearchOptions Options;
  Options.Policy = Policy;
  Options.MaxTests = 24;
  Options.Jobs = Jobs;
  Options.Engine = Engine;
  DirectedSearch Search(Prog, Natives, Entry, Options);
  return Search.run();
}

/// TSan-friendly fixture name: the thread-sanitizer CI leg filters on
/// VmDifferentialTest.* to exercise the engine seam under Jobs > 1.
class VmDifferentialTest : public ::testing::Test {
protected:
  NativeRegistry Natives;
  void SetUp() override { app::registerExampleNatives(Natives); }
};

//===----------------------------------------------------------------------===//
// Search-level identity over the example files
//===----------------------------------------------------------------------===//

TEST_F(VmDifferentialTest, SearchOutputIdenticalAcrossEnginesSerial) {
  for (const auto &Path : examplePaths()) {
    lang::Program Prog = loadProgram(Path);
    std::string Entry = entryOf(Prog);
    for (ConcretizationPolicy Policy : AllPolicies) {
      SearchResult A =
          runSearch(Prog, Natives, Entry, Policy, 1, vm::EngineKind::Interp);
      SearchResult B =
          runSearch(Prog, Natives, Entry, Policy, 1, vm::EngineKind::VM);
      expectIdentical(A, B,
                      Path.filename().string() + " / " + policyName(Policy) +
                          " / jobs 1");
    }
  }
}

TEST_F(VmDifferentialTest, SearchOutputIdenticalAcrossEnginesParallel) {
  for (const auto &Path : examplePaths()) {
    lang::Program Prog = loadProgram(Path);
    std::string Entry = entryOf(Prog);
    for (ConcretizationPolicy Policy : AllPolicies) {
      SearchResult A =
          runSearch(Prog, Natives, Entry, Policy, 4, vm::EngineKind::Interp);
      SearchResult B =
          runSearch(Prog, Natives, Entry, Policy, 4, vm::EngineKind::VM);
      expectIdentical(A, B,
                      Path.filename().string() + " / " + policyName(Policy) +
                          " / jobs 4");
    }
  }
}

/// Worker counts must not interact with the engine choice: VM at jobs 4
/// equals interpreter at jobs 1.
TEST_F(VmDifferentialTest, EngineAndJobsCommute) {
  for (const auto &Path : examplePaths()) {
    lang::Program Prog = loadProgram(Path);
    std::string Entry = entryOf(Prog);
    SearchResult A = runSearch(Prog, Natives, Entry,
                               ConcretizationPolicy::HigherOrder, 1,
                               vm::EngineKind::Interp);
    SearchResult B = runSearch(Prog, Natives, Entry,
                               ConcretizationPolicy::HigherOrder, 4,
                               vm::EngineKind::VM);
    expectIdentical(A, B, Path.filename().string() + " / cross jobs");
  }
}

//===----------------------------------------------------------------------===//
// Executor-level identity over the in-binary paper examples
//===----------------------------------------------------------------------===//

/// One shadow run per paper example and policy, on a fresh arena per
/// engine: every PathResult field must agree, with term ids compared
/// numerically — equal ids across independently-populated arenas means
/// the VM interned every term in exactly the co-executor's order.
TEST_F(VmDifferentialTest, ShadowRunsMatchTermForTerm) {
  for (const app::ExampleProgram &Example : app::allExamples()) {
    lang::Program Prog = app::compileExample(Example);
    TestInput Input = Example.InitialInput
                          ? *Example.InitialInput
                          : InputLayout(*Prog.findFunction(Example.Entry))
                                .zeroInput();
    for (ConcretizationPolicy Policy : AllPolicies) {
      std::string Context =
          Example.Name + " / " + policyName(Policy);
      ExecOptions Options;
      Options.Policy = Policy;

      smt::TermArena RefArena;
      smt::SampleTable RefSamples;
      SymbolicExecutor Ref(Prog, Natives, RefArena, Options);
      PathResult Expected = Ref.execute(Example.Entry, Input, &RefSamples);

      smt::TermArena VmArena;
      smt::SampleTable VmSamples;
      vm::CompiledProgram CP = vm::compile(Prog);
      vm::VM Machine(CP, Natives, VmArena);
      Machine.setOptions(Options);
      PathResult Actual = Machine.execute(Example.Entry, Input, &VmSamples);

      EXPECT_EQ(Actual.Run.Status, Expected.Run.Status) << Context;
      EXPECT_EQ(Actual.Run.ReturnValue, Expected.Run.ReturnValue) << Context;
      EXPECT_EQ(Actual.Run.Steps, Expected.Run.Steps) << Context;
      ASSERT_EQ(Actual.Run.Trace.size(), Expected.Run.Trace.size()) << Context;
      for (size_t I = 0; I != Expected.Run.Trace.size(); ++I) {
        EXPECT_EQ(Actual.Run.Trace[I].Branch, Expected.Run.Trace[I].Branch)
            << Context << " event " << I;
        EXPECT_EQ(Actual.Run.Trace[I].Taken, Expected.Run.Trace[I].Taken)
            << Context << " event " << I;
      }
      EXPECT_EQ(Actual.Run.Error.has_value(), Expected.Run.Error.has_value())
          << Context;
      if (Actual.Run.Error && Expected.Run.Error) {
        EXPECT_EQ(Actual.Run.Error->Site, Expected.Run.Error->Site) << Context;
        EXPECT_EQ(Actual.Run.Error->Message, Expected.Run.Error->Message)
            << Context;
      }

      EXPECT_EQ(Actual.PC.Truncated, Expected.PC.Truncated) << Context;
      ASSERT_EQ(Actual.PC.size(), Expected.PC.size()) << Context;
      for (size_t I = 0; I != Expected.PC.size(); ++I) {
        const PathEntry &E = Expected.PC.Entries[I];
        const PathEntry &A = Actual.PC.Entries[I];
        EXPECT_EQ(A.Constraint, E.Constraint) << Context << " entry " << I;
        EXPECT_EQ(A.Branch, E.Branch) << Context << " entry " << I;
        EXPECT_EQ(A.Taken, E.Taken) << Context << " entry " << I;
        EXPECT_EQ(A.IsConcretization, E.IsConcretization)
            << Context << " entry " << I;
        EXPECT_EQ(A.IsCheck, E.IsCheck) << Context << " entry " << I;
        EXPECT_EQ(A.TraceIndex, E.TraceIndex) << Context << " entry " << I;
      }
      EXPECT_EQ(Actual.PC.toString(VmArena), Expected.PC.toString(RefArena))
          << Context;

      EXPECT_EQ(Actual.NumConcretizations, Expected.NumConcretizations)
          << Context;
      EXPECT_EQ(Actual.NumUFApps, Expected.NumUFApps) << Context;
      EXPECT_EQ(Actual.NumSamplesRecorded, Expected.NumSamplesRecorded)
          << Context;
      EXPECT_EQ(VmSamples.serialize(VmArena), RefSamples.serialize(RefArena))
          << Context;
    }
  }
}

/// Concrete replay identity over the example files (the random baseline
/// and divergence replays run this path).
TEST_F(VmDifferentialTest, ConcreteRunsMatchTheInterpreter) {
  for (const auto &Path : examplePaths()) {
    lang::Program Prog = loadProgram(Path);
    std::string Entry = entryOf(Prog);
    InputLayout Layout(*Prog.findFunction(Entry));
    vm::CompiledProgram CP = vm::compile(Prog);
    smt::TermArena Arena;
    vm::VM Machine(CP, Natives, Arena);
    Interpreter Interp(Prog, Natives);

    // A deterministic fan of inputs, including boundary values that drive
    // the fault paths (0 divisors, out-of-range indices).
    for (int64_t Fill : {0, 1, 42, -3, 99}) {
      TestInput Input = Layout.zeroInput();
      for (size_t I = 0; I != Input.Cells.size(); ++I)
        Input.Cells[I] = Fill + static_cast<int64_t>(I);
      RunResult A = Interp.run(Entry, Input);
      RunResult B = Machine.runConcrete(Entry, Input, Interp.limits());
      std::string Context =
          Path.filename().string() + " / fill " + std::to_string(Fill);
      EXPECT_EQ(B.Status, A.Status) << Context;
      EXPECT_EQ(B.ReturnValue, A.ReturnValue) << Context;
      EXPECT_EQ(B.Steps, A.Steps) << Context;
      ASSERT_EQ(B.Trace.size(), A.Trace.size()) << Context;
      for (size_t I = 0; I != A.Trace.size(); ++I)
        EXPECT_TRUE(B.Trace[I] == A.Trace[I]) << Context << " event " << I;
    }
  }
}

} // namespace
