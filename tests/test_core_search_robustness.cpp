//===- tests/test_core_search_robustness.cpp - Fault-tolerant search ------------===//
//
// Worker-failure recovery, stop controls, and degraded-mode behaviour of
// the directed search (docs/robustness.md). The headline guarantee: an
// injected fault at any recoverable site may cost retries and replica
// rebuilds, but the SearchResult stays bit-identical to the fault-free
// serial search — recovery is invisible in the deterministic fields and
// visible only in WorkerFailures / InlineRetries / telemetry.
//
//===----------------------------------------------------------------------===//

#include "app/KeywordLexer.h"
#include "core/Search.h"
#include "lang/Parser.h"
#include "support/Deadline.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;
using namespace hotg::support;

namespace {

/// The deterministic subset of SearchResult (everything except the
/// schedule-dependent CacheHits/CacheMisses/WorkerFailures/InlineRetries
/// and context-reuse stats) must match the fault-free serial run.
void expectSameResult(const SearchResult &A, const SearchResult &B,
                      const char *What) {
  ASSERT_EQ(A.Tests.size(), B.Tests.size()) << What;
  for (size_t I = 0; I != A.Tests.size(); ++I) {
    EXPECT_EQ(A.Tests[I].Input.Cells, B.Tests[I].Input.Cells)
        << What << " test #" << I;
    EXPECT_EQ(A.Tests[I].Status, B.Tests[I].Status) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Diverged, B.Tests[I].Diverged) << What << " #" << I;
    EXPECT_EQ(A.Tests[I].Intermediate, B.Tests[I].Intermediate)
        << What << " #" << I;
  }
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size()) << What;
  for (size_t I = 0; I != A.Bugs.size(); ++I) {
    EXPECT_EQ(A.Bugs[I].Input.Cells, B.Bugs[I].Input.Cells) << What;
    EXPECT_EQ(A.Bugs[I].Status, B.Bugs[I].Status) << What;
    EXPECT_EQ(A.Bugs[I].Site, B.Bugs[I].Site) << What;
    EXPECT_EQ(A.Bugs[I].FoundAtTest, B.Bugs[I].FoundAtTest) << What;
  }
  EXPECT_TRUE(A.Cov == B.Cov) << What << ": coverage differs";
  EXPECT_EQ(A.Divergences, B.Divergences) << What;
  EXPECT_EQ(A.SolverCalls, B.SolverCalls) << What;
  EXPECT_EQ(A.ValidityCalls, B.ValidityCalls) << What;
  EXPECT_EQ(A.MultiStepRuns, B.MultiStepRuns) << What;
  EXPECT_EQ(A.SolverQueryStats.Checks, B.SolverQueryStats.Checks) << What;
  EXPECT_EQ(A.SolverQueryStats.Decisions, B.SolverQueryStats.Decisions)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsTried,
            B.ValidityQueryStats.GroundingsTried)
      << What;
  EXPECT_EQ(A.ValidityQueryStats.GroundingsPruned,
            B.ValidityQueryStats.GroundingsPruned)
      << What;
  EXPECT_EQ(A.Stopped, B.Stopped) << What;
}

/// Installs a FaultInjector for one scope; always disarms on exit so a
/// failing assertion cannot leak faults into unrelated tests.
class ScopedInjector {
public:
  explicit ScopedInjector(const std::string &Spec) {
    std::string Error;
    Injector = FaultInjector::parse(Spec, Error);
    EXPECT_NE(Injector, nullptr) << Spec << ": " << Error;
    setFaultInjector(Injector.get());
  }
  ~ScopedInjector() { setFaultInjector(nullptr); }
  FaultInjector *operator->() { return Injector.get(); }

private:
  std::unique_ptr<FaultInjector> Injector;
};

class SearchRobustnessTest : public ::testing::Test {
protected:
  void SetUp() override {
    App = buildKeywordLexer({6, 2});
    DiagnosticEngine Diags;
    auto Parsed = lang::parseAndCheck(App.Source, Diags);
    ASSERT_TRUE(Parsed) << Diags.render("lexer");
    Prog = std::move(*Parsed);
    Natives.registerDefaultHashes();
  }

  SearchOptions baseOptions(unsigned Jobs) {
    SearchOptions Options;
    Options.Policy = ConcretizationPolicy::HigherOrder;
    Options.MaxTests = 48;
    Options.InitialInput = App.identifierInput();
    Options.RandomLo = 32;
    Options.RandomHi = 126;
    Options.SkipCoveredTargets = false;
    Options.Jobs = Jobs;
    return Options;
  }

  SearchResult runWith(const SearchOptions &Options) {
    DirectedSearch Search(Prog, Natives, App.Entry, Options);
    return Search.run();
  }

  LexerApp App;
  lang::Program Prog;
  NativeRegistry Natives;
};

TEST_F(SearchRobustnessTest, EveryWorkerJobFailingStillMatchesSerial) {
  // The merge point must catch the throwing job (satellite: worker-job
  // exceptions are caught and classified, not propagated out of run())
  // and recover by computing the query inline.
  SearchResult Baseline = runWith(baseOptions(1));
  ScopedInjector Injector("worker-dispatch:1.0:7");
  SearchResult Faulty = runWith(baseOptions(2));
  expectSameResult(Baseline, Faulty, "all worker jobs throwing");
  EXPECT_GT(Faulty.WorkerFailures, 0u);
  EXPECT_GT(Faulty.InlineRetries, 0u);
  EXPECT_GT(Injector->fired(FaultSite::WorkerDispatch), 0u);
  EXPECT_EQ(Baseline.WorkerFailures, 0u);
}

TEST_F(SearchRobustnessTest, ModerateWorkerFaultRateAcrossSeeds) {
  // The acceptance scenario: p = 0.2 worker-dispatch faults at --jobs 4.
  // Each seed produces a different (deterministic) fire set; every one of
  // them must recover to the identical SearchResult.
  SearchResult Baseline = runWith(baseOptions(1));
  unsigned TotalFailures = 0;
  for (const char *Spec : {"worker-dispatch:0.2:1", "worker-dispatch:0.2:2",
                           "worker-dispatch:0.2:3"}) {
    ScopedInjector Injector(Spec);
    SearchResult Faulty = runWith(baseOptions(4));
    expectSameResult(Baseline, Faulty, Spec);
    TotalFailures += Faulty.WorkerFailures;
  }
  EXPECT_GT(TotalFailures, 0u);
}

TEST_F(SearchRobustnessTest, BrokenReplicasAreRebuiltFromTheDeltaStream) {
  // A fault while applying an arena delta poisons the worker's replica;
  // the next job on that worker must rebuild it from delta zero instead
  // of trusting half-applied state.
  SearchResult Baseline = runWith(baseOptions(1));
  telemetry::Counter &Rebuilds =
      telemetry::Registry::global().counter("search.replica_rebuilds");
  uint64_t RebuildsBefore = Rebuilds.value();
  ScopedInjector Injector("arena-delta:0.3:11");
  SearchResult Faulty = runWith(baseOptions(2));
  expectSameResult(Baseline, Faulty, "arena-delta faults");
  EXPECT_GT(Faulty.WorkerFailures, 0u);
  EXPECT_GT(Rebuilds.value(), RebuildsBefore);
}

TEST_F(SearchRobustnessTest, DroppedCachePublishesOnlyCostRecomputation) {
  SearchResult Baseline = runWith(baseOptions(1));
  ScopedInjector Injector("cache-publish:1.0:5");
  SearchResult Faulty = runWith(baseOptions(2));
  expectSameResult(Baseline, Faulty, "all cache publishes dropped");
}

TEST_F(SearchRobustnessTest, SerialSolverFaultsRetryInline) {
  // Serial mode has no workers: a fault thrown from inside a query lands
  // in the guarded solve wrapper, which retries a bounded number of times
  // before degrading that one query to Unknown.
  ScopedInjector Injector("validity-ground:0.05:13");
  SearchResult Faulty = runWith(baseOptions(1));
  EXPECT_EQ(Faulty.WorkerFailures, 0u);
  EXPECT_GT(Faulty.InlineRetries, 0u);
  EXPECT_GE(Faulty.Tests.size(), 1u);
}

TEST_F(SearchRobustnessTest, PreExpiredDeadlineYieldsPartialResult) {
  SearchOptions Options = baseOptions(1);
  Options.Deadline = Deadline::afterNanos(0);
  SearchResult R = runWith(Options);
  EXPECT_EQ(R.Stopped, StopReason::DeadlineExpired);
  // Partial results are first-class: the seed test always runs (its
  // interpreter poll fires only every 1024 steps) and is reported.
  EXPECT_GE(R.Tests.size(), 1u);
  EXPECT_LT(R.Tests.size(), 48u);
}

TEST_F(SearchRobustnessTest, DeadlineExpiryMatchesAcrossJobs) {
  // Not bit-identical (a deadline run is inherently timing-dependent) but
  // both must stop, stay well-formed, and report the reason.
  for (unsigned Jobs : {1u, 4u}) {
    SearchOptions Options = baseOptions(Jobs);
    Options.MaxTests = 100000;
    Options.Deadline = Deadline::afterMillis(1);
    SearchResult R = runWith(Options);
    EXPECT_EQ(R.Stopped, StopReason::DeadlineExpired) << Jobs << " jobs";
    EXPECT_GE(R.Tests.size(), 1u) << Jobs << " jobs";
  }
}

TEST_F(SearchRobustnessTest, CancellationStopsTheSearch) {
  SearchOptions Options = baseOptions(1);
  Options.Cancel = CancelToken::create();
  Options.Cancel.requestCancel();
  SearchResult R = runWith(Options);
  EXPECT_EQ(R.Stopped, StopReason::Cancelled);
  EXPECT_LT(R.Tests.size(), 48u);
}

TEST_F(SearchRobustnessTest, TestBudgetWithRemainingWorkIsReported) {
  SearchOptions Options = baseOptions(1);
  Options.MaxTests = 3;
  SearchResult R = runWith(Options);
  EXPECT_EQ(R.Stopped, StopReason::TestBudget);
  EXPECT_EQ(R.Tests.size(), 3u);
}

TEST_F(SearchRobustnessTest, FaultFreeRunReportsNoFailures) {
  SearchResult R = runWith(baseOptions(4));
  EXPECT_EQ(R.WorkerFailures, 0u);
  EXPECT_EQ(R.InlineRetries, 0u);
  // No stop control is armed, so only natural completion or the test
  // budget can be reported.
  EXPECT_TRUE(R.Stopped == StopReason::None ||
              R.Stopped == StopReason::TestBudget);
}

TEST_F(SearchRobustnessTest, RandomSearchHonoursTheDeadline) {
  RunLimits Limits;
  Limits.Deadline = Deadline::afterNanos(0);
  SearchResult R = runRandomSearch(Prog, Natives, App.Entry,
                                   /*NumTests=*/100000, 32, 126,
                                   /*Seed=*/42, Limits);
  EXPECT_EQ(R.Stopped, StopReason::DeadlineExpired);
  EXPECT_LT(R.Tests.size(), 100000u);
}

} // namespace
