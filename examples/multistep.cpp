//===- examples/multistep.cpp - Example 7's two-step generation, step by step -----===//
//
// Re-enacts Section 5.3 / Example 7 with full visibility into the
// machinery: symbolic execution with uninterpreted functions, POST(pc)
// construction, validity checking, the learning run, and the final
// error-triggering test. Uses the lower-level APIs directly instead of
// DirectedSearch so each artifact can be printed.
//
// Build & run:  ./build/examples/multistep
//
//===----------------------------------------------------------------------===//

#include "core/Post.h"
#include "core/ValiditySolver.h"
#include "dse/SymbolicExecutor.h"
#include "interp/NativeFunc.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

void showRun(const char *Label, const PathResult &PR,
             const smt::TermArena &Arena) {
  std::printf("%s\n  status: %s\n  path constraint:\n", Label,
              runStatusName(PR.Run.Status));
  for (const PathEntry &E : PR.PC.Entries)
    std::printf("    %s%s\n", Arena.toString(E.Constraint).c_str(),
                E.IsConcretization ? "   (concretization)" : "");
}

} // namespace

int main() {
  const char *Source = R"(
extern hash(int) -> int;
fun foo(x: int, y: int) -> int {
  if (x == hash(y)) {
    if (y == 10) {
      error("nested error reached");
    }
    return 1;
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile error:\n%s", Diags.render().c_str());
    return 1;
  }
  NativeRegistry Natives;
  Natives.registerDefaultHashes();

  smt::TermArena Arena;
  smt::SampleTable Samples;
  ExecOptions Exec;
  Exec.Policy = ConcretizationPolicy::HigherOrder;
  SymbolicExecutor Executor(*Prog, Natives, Arena, Exec);

  std::printf("Example 7 (two-step test generation) on:\n%s\n", Source);

  // ---- Run 1: random-ish start, takes the outer else branch. ----------
  TestInput Run1;
  Run1.Cells = {33, 42};
  PathResult PR1 = Executor.execute("foo", Run1, &Samples);
  showRun("run 1: foo(33, 42)", PR1, Arena);
  std::printf("  IOF samples so far: %zu (hash(42) = %lld)\n\n",
              Samples.size(),
              static_cast<long long>(defaultHash1(42)));

  // ---- Negate the only constraint; derive a test from validity. -------
  smt::TermId Alt1 = PR1.PC.alternate(Arena, 0);
  std::printf("POST(ALT(pc)) = %s\n",
              postToString(Arena, Alt1, Samples).c_str());
  ValiditySolver Validity1(Arena, Samples);
  ValidityAnswer A1 = Validity1.checkPost(Alt1);
  std::printf("validity: %s — strategy: %s\n\n",
              validityStatusName(A1.Status),
              A1.ModelValue.toString(Arena).c_str());

  // ---- Run 2: takes the then branch, stops before y == 10. ------------
  TestInput Run2;
  Run2.Cells = {A1.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0),
                A1.ModelValue.varValueOr(Arena.getOrCreateVar("y"), 0)};
  PathResult PR2 = Executor.execute("foo", Run2, &Samples);
  showRun(("run 2: foo" + Run2.toString()).c_str(), PR2, Arena);
  std::printf("\n");

  // ---- Negate the nested constraint: x = h(y) ∧ y = 10. ---------------
  smt::TermId Alt2 = PR2.PC.alternate(Arena, 1);
  std::printf("POST(ALT(pc)) = %s\n",
              postToString(Arena, Alt2, Samples).c_str());
  ValiditySolver Validity2(Arena, Samples);
  ValidityAnswer A2 = Validity2.checkPost(Alt2);
  std::printf("validity: %s", validityStatusName(A2.Status));
  if (A2.Status == ValidityStatus::NeedsSamples) {
    std::printf(" — must learn %s at (%lld) first\n",
                Arena.func(A2.Learn[0].Func).Name.c_str(),
                static_cast<long long>(A2.Learn[0].Args[0]));

    // ---- Intermediate (learning) run: y = 10, x arbitrary. ------------
    TestInput Learn;
    Learn.Cells = {A2.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0),
                   A2.ModelValue.varValueOr(Arena.getOrCreateVar("y"), 0)};
    std::printf("\nintermediate run: foo%s (learns hash(10) = %lld)\n\n",
                Learn.toString().c_str(),
                static_cast<long long>(defaultHash1(10)));
    Executor.execute("foo", Learn, &Samples);

    // ---- Re-solve with the enriched antecedent. ------------------------
    ValiditySolver Validity3(Arena, Samples);
    ValidityAnswer A3 = Validity3.checkPost(Alt2);
    std::printf("re-solved validity: %s — strategy: %s\n",
                validityStatusName(A3.Status),
                A3.ModelValue.toString(Arena).c_str());

    TestInput Final;
    Final.Cells = {A3.ModelValue.varValueOr(Arena.getOrCreateVar("x"), 0),
                   A3.ModelValue.varValueOr(Arena.getOrCreateVar("y"), 0)};
    PathResult PR3 = Executor.execute("foo", Final, &Samples);
    showRun(("final run: foo" + Final.toString()).c_str(), PR3, Arena);
    std::printf("\n=> %s\n", PR3.Run.Status == RunStatus::ErrorHit
                                 ? "the nested error is reached in two "
                                   "steps, exactly as in the paper."
                                 : "unexpected: the error was not reached");
    return PR3.Run.Status == RunStatus::ErrorHit ? 0 : 1;
  }
  std::printf("\nunexpected: a one-shot strategy was found\n");
  return 1;
}
