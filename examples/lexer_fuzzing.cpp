//===- examples/lexer_fuzzing.cpp - Whitebox-fuzzing the keyword lexer ------------===//
//
// The Section 7 application as a user would drive it: generate the
// keyword-hash lexer program, run higher-order test generation against it,
// and print the synthesized inputs — watch the search literally spell out
// the language's keywords by inverting the hash through its samples.
//
// Build & run:  ./build/examples/lexer_fuzzing
//
//===----------------------------------------------------------------------===//

#include "app/KeywordLexer.h"
#include "core/Search.h"
#include "interp/NativeFunc.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

/// Renders an input buffer as quoted printable chunks.
std::string decodeChunks(const interp::TestInput &Input, unsigned Chunks) {
  std::string Out;
  for (unsigned C = 0; C != Chunks; ++C) {
    if (C)
      Out += " ";
    Out += "\"";
    for (unsigned I = 0; I != 4; ++I) {
      int64_t V = Input.Cells[C * 4 + I];
      Out += (V >= 32 && V < 127) ? static_cast<char>(V) : '?';
    }
    Out += "\"";
  }
  return Out;
}

} // namespace

int main() {
  LexerApp App = buildKeywordLexer({/*NumKeywords=*/6, /*NumChunks=*/2});

  std::printf("generated lexer+parser program (%zu keywords):\n",
              App.Keywords.size());
  std::printf("%s\n", App.Source.c_str());

  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(App.Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile error:\n%s", Diags.render().c_str());
    return 1;
  }
  NativeRegistry Natives;
  Natives.registerDefaultHashes();

  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 64;
  Options.InitialInput = App.identifierInput();
  Options.SkipCoveredTargets = false;
  DirectedSearch Search(*Prog, Natives, App.Entry, Options);
  SearchResult Result = Search.run();

  std::printf("higher-order whitebox fuzzing, %u tests:\n",
              Result.testsRun());
  for (size_t I = 0; I != Result.Tests.size(); ++I) {
    const TestRecord &T = Result.Tests[I];
    std::printf("  #%02zu %s  %s%s\n", I + 1,
                decodeChunks(T.Input, App.Spec.NumChunks).c_str(),
                runStatusName(T.Status),
                T.Intermediate ? " (learning run)" : "");
  }

  std::printf("\nkeywords synthesized: %u / %u\n",
              countKeywordsMatched(App, Result.Cov),
              App.Spec.NumKeywords);
  for (const BugRecord &Bug : Result.Bugs)
    std::printf("parser error production reached by %s: \"%s\"\n",
                decodeChunks(Bug.Input, App.Spec.NumChunks).c_str(),
                Bug.Message.c_str());
  std::printf("IOF samples recorded: %zu\n", Search.samples().size());
  return 0;
}
