//===- examples/quickstart.cpp - Five-minute tour of the hotg API -----------------===//
//
// Compiles the paper's introductory `obscure` program, runs every
// test-generation strategy on it, and prints what each one found. This is
// the smallest end-to-end use of the public API:
//
//   parse  →  pick a policy  →  DirectedSearch  →  inspect results.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "interp/NativeFunc.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

int main() {
  // 1. A program under test, written in MiniLang. `hash` is an *unknown
  //    function*: the solver cannot see through it, which is precisely the
  //    imprecision the paper studies.
  const char *Source = R"(
extern hash(int) -> int;
fun obscure(x: int, y: int) -> int {
  if (x == hash(y)) {
    error("then branch reached");
  }
  return 0;
}
)";

  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile error:\n%s", Diags.render().c_str());
    return 1;
  }

  // 2. Bind the extern to a concrete (but opaque) native implementation.
  NativeRegistry Natives;
  Natives.registerDefaultHashes();

  // 3. Run the directed search under each concretization policy.
  std::printf("obscure(x, y): if (x == hash(y)) error;\n");
  std::printf("starting input: x=33, y=42\n\n");
  for (ConcretizationPolicy Policy :
       {ConcretizationPolicy::Unsound, ConcretizationPolicy::Sound,
        ConcretizationPolicy::SoundDelayed,
        ConcretizationPolicy::HigherOrder}) {
    SearchOptions Options;
    Options.Policy = Policy;
    Options.MaxTests = 16;
    TestInput Init;
    Init.Cells = {33, 42};
    Options.InitialInput = Init;

    DirectedSearch Search(*Prog, Natives, "obscure", Options);
    SearchResult Result = Search.run();

    std::printf("policy %-13s: %u tests, %u divergences, ",
                policyName(Policy), Result.testsRun(), Result.Divergences);
    if (Result.Bugs.empty()) {
      std::printf("error NOT reached\n");
      continue;
    }
    std::printf("error reached with input %s\n",
                Result.Bugs.front().Input.toString().c_str());
  }

  std::printf("\nEvery dynamic strategy solves this one — the interesting "
              "differences appear on nested and mutually-recursive hash "
              "constraints; see examples/multistep.cpp and the benches.\n");
  return 0;
}
