// checksum.ml — a frame checksum validator: a 10-cell input models one
// framed message (magic, type, length, four payload cells, a declared
// checksum, a sequence number and a flag byte). The validator recomputes
// the checksum with plain arithmetic, but compares it to the declared one
// only through the unknown `hash2` native — the Example 5 congruence
// pattern — so reaching the post-verification handlers requires the
// higher-order policy to equate the two hash applications. A linear
// "oversized payload" error site before the checksum gate gives the
// classic policies a reachable target, and the type handlers behind the
// gate contain the deep bugs.
//
// Frame layout (cells 0..9):
//   0  magic   — must be 77
//   1  ptype   — 1 data, 2 ack, 3 control
//   2  len     — payload cells in use, 0..4
//   3..6      — payload
//   7  declared checksum
//   8  sequence number
//   9  flags

extern hash2(int) -> int;
extern fstep(int) -> int;

// --- small arithmetic helpers ----------------------------------------------

// Clamp a declared length into the physical payload size.
fun clamp_len(n: int) -> int {
  if (n < 0) { return 0; }
  if (n > 4) { return 4; }
  return n;
}

// One mixing round of the rolling checksum (bounded by the modulus).
fun mix(acc: int, v: int) -> int {
  var next: int = acc * 33 + v;
  return next % 65536;
}

// Position weight of payload cell i (a tiny fixed table).
fun weight(i: int) -> int {
  if (i == 0) { return 7; }
  if (i == 1) { return 11; }
  if (i == 2) { return 13; }
  return 17;
}

// Saturating payload-sum helper (keeps the oversize check linear).
fun add_sat(acc: int, v: int) -> int {
  var next: int = acc + v;
  if (next > 100000) { return 100000; }
  return next;
}

// --- frame predicates -------------------------------------------------------

fun is_known_type(t: int) -> int {
  if (t == 1) { return 1; }
  if (t == 2) { return 1; }
  if (t == 3) { return 1; }
  return 0;
}

// An ack frame must carry no payload and a zero flag byte.
fun ack_well_formed(len: int, flags: int) -> int {
  if (len != 0) { return 0; }
  if (flags != 0) { return 0; }
  return 1;
}

// A control frame's flag byte encodes a command in its low bits and a
// parity bit above them; the parity must match the command.
fun control_parity_ok(flags: int) -> int {
  var command: int = flags % 8;
  var parity: int = (flags / 8) % 2;
  var bits: int = 0;
  var probe: int = command;
  while (probe > 0) {
    bits = bits + probe % 2;
    probe = probe / 2;
  }
  if (bits % 2 == parity) { return 1; }
  return 0;
}

// --- checksum computation ---------------------------------------------------

// Recompute the frame checksum: weighted payload cells folded through the
// mixing rounds, then one `fstep` avalanche step folded back in. All of
// this is concrete arithmetic over the inputs plus one unknown native —
// the declared-vs-computed comparison below is where the imprecision
// actually bites.
fun compute_checksum(p0: int, p1: int, p2: int, p3: int, len: int) -> int {
  var acc: int = 5381;
  var i: int = 0;
  while (i < len) {
    var cell: int = 0;
    if (i == 0) { cell = p0; }
    if (i == 1) { cell = p1; }
    if (i == 2) { cell = p2; }
    if (i == 3) { cell = p3; }
    acc = mix(acc, cell * weight(i));
    i = i + 1;
  }
  // Length is part of the checksum domain: truncation must not verify.
  acc = mix(acc, len * 251);
  return acc;
}

// --- type handlers (behind the checksum gate) -------------------------------

fun handle_data(p0: int, p1: int, len: int, seq: int) -> int {
  if (len == 0) {
    return 20; // empty data frame: legal but pointless
  }
  if (seq % 2 == 1) {
    if (p0 == p1) {
      if (p0 > 50) {
        // Verified data frame with a mirrored high payload on an odd
        // sequence — the deep data-path bug.
        error("mirrored payload accepted on odd sequence");
      }
    }
  }
  return 21;
}

fun handle_ack(len: int, flags: int, seq: int) -> int {
  if (ack_well_formed(len, flags) == 0) {
    return -4;
  }
  if (seq == 0) {
    error("ack frame with zero sequence verified");
  }
  return 22;
}

fun handle_control(flags: int, seq: int) -> int {
  if (control_parity_ok(flags) == 0) {
    return -5;
  }
  var command: int = flags % 8;
  if (command == 6) {
    if (seq > 90) {
      error("reset command verified with stale sequence");
    }
  }
  return 23;
}

// --- the validator ----------------------------------------------------------

fun main(frame: int[10]) -> int {
  var magic: int = frame[0];
  var ptype: int = frame[1];
  var len: int = clamp_len(frame[2]);
  var declared: int = frame[7];
  var seq: int = frame[8];
  var flags: int = frame[9];

  if (magic != 77) {
    return -1; // not our protocol
  }
  if (is_known_type(ptype) == 0) {
    return -2;
  }
  if (frame[2] != len) {
    return -3; // declared length out of range
  }

  // Linear target for the classic policies: an oversized payload must be
  // rejected before checksum verification, and a full-length frame whose
  // saturating sum exceeds the budget is the bug.
  var payload_sum: int = 0;
  var i: int = 0;
  while (i < len) {
    payload_sum = add_sat(payload_sum, frame[3 + i]);
    i = i + 1;
  }
  if (len == 4) {
    if (payload_sum > 300) {
      error("oversized payload accepted");
    }
  }

  var computed: int = compute_checksum(frame[3], frame[4], frame[5],
                                       frame[6], len);

  // The congruence gate: the validator never compares raw checksums, only
  // their hash2 images. Concretely equivalent to computed == declared;
  // symbolically an uninterpreted-function equation the higher-order
  // policy solves by equating the arguments (Example 5).
  if (hash2(computed) == hash2(declared)) {
    var verdict: int = 0;
    if (ptype == 1) {
      verdict = handle_data(frame[3], frame[4], len, seq);
    }
    if (ptype == 2) {
      verdict = handle_ack(len, flags, seq);
    }
    if (ptype == 3) {
      verdict = handle_control(flags, seq);
    }
    assert(verdict != 0);
    return verdict;
  }
  // One avalanche probe of the rejected frame keeps `fstep` in the IOF
  // sample stream even on the failure path.
  var probe: int = fstep(declared % 97);
  if (probe == computed) {
    return -7; // astronomically unlikely, kept for branch diversity
  }
  return -6;
}
