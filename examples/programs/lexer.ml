// The Section 7 keyword-hash lexer (buildKeywordLexer({6, 2})), dumped to
// a file so hotg-run and the CI fault-injection smoke matrix can drive the
// flagship application end to end. Six keywords, two 4-character chunks;
// reaching the error sites requires inverting hash4 through IOF samples
// (higher-order policy); plain DSE degenerates to random testing here.
extern hash4(int, int, int, int) -> int;

fun classify(c0: int, c1: int, c2: int, c3: int) -> int {
  var sym: int = hash4(c0, c1, c2, c3);
  if (sym == hash4(119, 104, 105, 108)) { return 1; } // "whil"
  if (sym == hash4(100, 111, 110, 101)) { return 2; } // "done"
  if (sym == hash4(101, 108, 115, 101)) { return 3; } // "else"
  if (sym == hash4(108, 111, 111, 112)) { return 4; } // "loop"
  if (sym == hash4(102, 117, 110, 99)) { return 5; } // "func"
  if (sym == hash4(99, 97, 108, 108)) { return 6; } // "call"
  return 0; // identifier
}

fun lex_main(buf: int[8]) -> int {
  var t0: int = classify(buf[0], buf[1], buf[2], buf[3]);
  var t1: int = classify(buf[4], buf[5], buf[6], buf[7]);
  if (t0 == 1) {
    if (t1 == 2) {
      error("parsed 'whil done' production");
    }
    return 100;
  }
  if (t0 == 3 && t1 == 3) {
    error("parsed repeated 'else'");
  }
  var nkw: int = 0;
  if (t0 > 0) { nkw = nkw + 1; }
  if (t1 > 0) { nkw = nkw + 1; }
  return nkw;
}
