// The paper's introductory example (Section 1): static test generation
// cannot cover the then branch; dynamic test generation can.
extern hash(int) -> int;

fun obscure(x: int, y: int) -> int {
  if (x == hash(y)) {
    error("obscure: then branch reached");
  }
  return 0;
}
