// A small "maze": reach the treasure by steering through an input guard,
// linear arithmetic, a loop invariant, and a checksum gate (unknown
// function). Exercises multi-step higher-order generation end to end:
//   hotg-run examples/programs/maze.ml --policy higher-order --dump-tests
extern hash(int) -> int;

fun maze(door: int, turns: int, token: int) -> int {
  if (turns < 0 || turns > 10) {
    return 3; // input validation
  }
  if (door * 3 + 1 != 16) {
    return 0; // wrong door (door must be 5)
  }
  var position: int = 0;
  var i: int = 0;
  while (i < turns) {
    position = position + 2;
    i = i + 1;
  }
  if (position != 8) {
    return 1; // wrong number of turns (needs 4)
  }
  if (token == hash(position)) {
    error("maze: treasure reached");
  }
  return 2;
}
