// Classic sanitizer-style target: an out-of-bounds write guarded by
// arithmetic the search must solve, plus a division hazard.
fun store(buf: int[4], index: int, value: int) -> int {
  if (index >= 0) {
    if (index * 2 < 10) {
      buf[index] = value;      // index in 0..4 — 4 is out of bounds!
      return buf[index] / value; // value == 0 divides by zero
    }
  }
  return -1;
}
