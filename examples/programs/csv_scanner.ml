// csv_scanner.ml — a miniature CSV record scanner in the style of the
// Section 7 lexer, but stressing stateful scanning instead of keyword
// hashing: the input is a 12-character buffer holding up to three
// semicolon-terminated records of comma-separated fields, and the scanner
// validates structure (field counts, digit-only id fields, lowercase tag
// fields) while folding every tag field through the unknown `hash`
// native. The deep error sites are guarded by hash equalities the
// higher-order policy can invert through recorded IOF samples; one
// structural error site is reachable by plain constraint solving so every
// policy has something to find.
//
// Character vocabulary (all plain ASCII, matching the 0..99 search range):
//   44 ','  — field separator
//   59 ';'  — record terminator
//   48..57  — digits (id and count fields)
//   97..99  — lowercase tag letters the random range can reach
//
// Grammar per record:   id ',' tag ',' count ';'
//   id    — one or two digits, value > 0
//   tag   — one or two lowercase letters
//   count — one digit, value <= 7

extern hash(int) -> int;
extern hash2(int) -> int;

// --- character classification helpers --------------------------------------

fun is_digit(c: int) -> int {
  if (c >= 48) {
    if (c <= 57) { return 1; }
  }
  return 0;
}

fun is_lower(c: int) -> int {
  if (c >= 97) {
    if (c <= 122) { return 1; }
  }
  return 0;
}

// Character classes: 1 = comma, 2 = record end, 3 = digit, 4 = letter,
// 0 = junk (anything else aborts the record).
fun char_class(c: int) -> int {
  if (c == 44) { return 1; }
  if (c == 59) { return 2; }
  if (is_digit(c) == 1) { return 3; }
  if (is_lower(c) == 1) { return 4; }
  return 0;
}

fun digit_value(c: int) -> int {
  if (is_digit(c) == 1) { return c - 48; }
  return -1;
}

// --- per-field accumulators -------------------------------------------------

// Fold one character into a numeric field (base-10 accumulate, saturated
// at three digits so the values stay small for the validators below).
fun fold_number(acc: int, c: int) -> int {
  var next: int = acc * 10 + digit_value(c);
  if (next > 999) { return 999; }
  return next;
}

// Fold one character into a tag accumulator. The multiplier keeps two
// distinct letters from colliding; the modulus bounds the value.
fun fold_tag(acc: int, c: int) -> int {
  var next: int = acc * 31 + c;
  return next % 100000;
}

// --- field validators -------------------------------------------------------

// Field 0: the record id. Must be all digits and strictly positive.
fun check_id(value: int, digits: int, letters: int) -> int {
  if (letters > 0) { return 0; }
  if (digits == 0) { return 0; }
  if (value <= 0) { return 0; }
  return 1;
}

// Field 1: the tag. Must be all letters, at least one.
fun check_tag(digits: int, letters: int) -> int {
  if (digits > 0) { return 0; }
  if (letters == 0) { return 0; }
  return 1;
}

// Field 2: the count. One digit, small.
fun check_count(value: int, digits: int, letters: int) -> int {
  if (letters > 0) { return 0; }
  if (digits != 1) { return 0; }
  if (value > 7) { return 0; }
  return 1;
}

// Dispatch on the field index inside the record.
fun check_field(index: int, value: int, digits: int, letters: int) -> int {
  if (index == 0) { return check_id(value, digits, letters); }
  if (index == 1) { return check_tag(digits, letters); }
  if (index == 2) { return check_count(value, digits, letters); }
  return 0;
}

// --- the scanner ------------------------------------------------------------

// Scans buf and returns a summary code: 100 + number of valid records, or
// a negative code for the first structural rejection. The interesting
// outcomes are the error() sites, which the directed search must reach.
fun main(buf: int[12]) -> int {
  var i: int = 0;
  var field_index: int = 0;    // 0 = id, 1 = tag, 2 = count
  var field_value: int = 0;    // numeric accumulator of the current field
  var field_tag: int = 0;      // tag accumulator of the current field
  var digits: int = 0;         // digit characters seen in this field
  var letters: int = 0;        // letter characters seen in this field
  var records: int = 0;        // completed valid records
  var bad_fields: int = 0;     // rejected fields across the whole buffer
  var rec_id: int = 0;         // id field of the record in flight
  var last_id: int = -1;       // id field of the previous valid record
  var tag_digest: int = 0;     // hash-folded digest of every tag field
  var total_count: int = 0;    // sum of the count fields

  while (i < 12) {
    var c: int = buf[i];
    var cls: int = char_class(c);

    if (cls == 3) {
      field_value = fold_number(field_value, c);
      field_tag = fold_tag(field_tag, c);
      digits = digits + 1;
    }
    if (cls == 4) {
      field_tag = fold_tag(field_tag, c);
      letters = letters + 1;
    }
    if (cls == 0) {
      // Junk aborts the scan; a junk byte inside a tag field after at
      // least one valid record is the structural error site every policy
      // can reach by plain branch solving.
      if (records > 0) {
        if (field_index == 1) {
          if (letters > 0) {
            error("junk byte inside a tag field");
          }
        }
      }
      return -1;
    }

    if (cls == 1) {
      // Field separator: validate and advance within the record.
      if (check_field(field_index, field_value, digits, letters) == 0) {
        bad_fields = bad_fields + 1;
      }
      if (field_index == 0) {
        rec_id = field_value;
      }
      if (field_index == 1) {
        // Fold the finished tag into the running digest through the
        // unknown hash — the IOF the higher-order policy samples.
        tag_digest = (tag_digest + hash(field_tag)) % 1000000;
      }
      field_index = field_index + 1;
      if (field_index > 2) {
        return -2; // too many fields in one record
      }
      field_value = 0;
      field_tag = 0;
      digits = 0;
      letters = 0;
    }

    if (cls == 2) {
      // Record terminator: the count field must be in flight.
      if (field_index != 2) {
        return -3; // short record
      }
      if (check_count(field_value, digits, letters) == 0) {
        bad_fields = bad_fields + 1;
      }
      if (bad_fields == 0) {
        // A duplicate id in consecutive valid records is only detectable
        // through the digest — hash(id) repeating. Concretely that means
        // rec_id == last_id (the hash is collision-free), but the scanner
        // only sees the hashes: the Example 5 congruence strategy of the
        // higher-order policy is what equates the two applications.
        if (records > 0) {
          if (hash(rec_id) == hash(last_id)) {
            error("duplicate record id");
          }
        }
        last_id = rec_id;
        total_count = total_count + field_value;
        records = records + 1;
      }
      field_index = 0;
      field_value = 0;
      field_tag = 0;
      digits = 0;
      letters = 0;
    }

    i = i + 1;
  }

  // Every complete scan keeps the folded digest consistent with the
  // record count — a cheap structural invariant over the state machine.
  assert(records <= 4);
  if (records >= 2) {
    if (total_count > 9) {
      error("accepted more than nine units across records");
    }
  }
  return 100 + records;
}
