// Compositional target (Section 8): the error sits behind a helper whose
// result must be reasoned about through its summary. Run with and without
// --summarize to compare inlining against summary grounding:
//   hotg-run examples/programs/compose.ml --summarize --dump-tests
extern hash(int) -> int;

fun clamp(v: int) -> int {
  if (v < 0) { return 0; }
  if (v > 100) { return 100; }
  return v;
}

fun scale(v: int) -> int {
  return clamp(v) * 3 + 1;
}

fun main(x: int, y: int) -> int {
  if (scale(x) == 91) {          // needs clamp(x) = 30, i.e. x = 30
    if (y == hash(x)) {          // and the observed hash of 30
      error("composed: both layers solved");
    }
    return 1;
  }
  return 0;
}
