//===- examples/packet_fuzzing.cpp - Forging checksums with observed samples ------===//
//
// Whitebox-fuzz the CRC-gated packet parser starting from an all-zero
// packet: watch higher-order generation discover the magic value, a valid
// version, a plausible length, and then *forge the checksum* — re-learning
// crc5 after every payload mutation (the multi-step mechanism) — until the
// privileged handler fires.
//
// Build & run:  ./build/examples/packet_fuzzing
//
//===----------------------------------------------------------------------===//

#include "app/PacketParser.h"
#include "core/Search.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace hotg;
using namespace hotg::app;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

int main() {
  PacketApp App = buildPacketParser();
  std::printf("packet parser under test:\n%s\n", App.Source.c_str());

  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(App.Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile error:\n%s", Diags.render().c_str());
    return 1;
  }
  NativeRegistry Natives;
  registerPacketNatives(Natives);

  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 96;
  Options.InitialInput = App.garbagePacket();
  Options.SkipCoveredTargets = false;
  DirectedSearch Search(*Prog, Natives, App.Entry, Options);
  SearchResult Result = Search.run();

  std::printf("higher-order whitebox fuzzing from an all-zero packet "
              "(%u tests, %u learning runs):\n",
              Result.testsRun(), Result.MultiStepRuns);
  for (size_t I = 0; I != Result.Tests.size(); ++I) {
    const TestRecord &T = Result.Tests[I];
    if (T.Status == RunStatus::Ok && I % 8 != 0 && !T.Intermediate)
      continue; // Keep the narrative readable.
    std::printf("  #%02zu %-55s %s%s\n", I + 1,
                T.Input.toString().c_str(), runStatusName(T.Status),
                T.Intermediate ? " (learning run)" : "");
  }

  for (const BugRecord &Bug : Result.Bugs)
    std::printf("\nBUG \"%s\"\n  packet: %s\n  (magic %lld, version %lld, "
                "len %lld, payload [%lld %lld %lld %lld], checksum %lld)\n",
                Bug.Message.c_str(), Bug.Input.toString().c_str(),
                static_cast<long long>(Bug.Input.Cells[0]),
                static_cast<long long>(Bug.Input.Cells[1]),
                static_cast<long long>(Bug.Input.Cells[2]),
                static_cast<long long>(Bug.Input.Cells[3]),
                static_cast<long long>(Bug.Input.Cells[4]),
                static_cast<long long>(Bug.Input.Cells[5]),
                static_cast<long long>(Bug.Input.Cells[6]),
                static_cast<long long>(Bug.Input.Cells[7]));

  std::printf("\nIOF samples recorded: %zu (every crc5 observation)\n",
              Search.samples().size());
  return Result.Bugs.empty() ? 1 : 0;
}
