//===- examples/custom_program.cpp - Bring your own program and native ------------===//
//
// Shows the full downstream-user workflow: write a MiniLang program that
// calls your own opaque C++ function, register the native, and let
// higher-order test generation find inputs that drive it into an error —
// including through a checksum your solver cannot invert analytically.
//
// Build & run:  ./build/examples/custom_program
//
//===----------------------------------------------------------------------===//

#include "core/Search.h"
#include "interp/NativeFunc.h"
#include "lang/Parser.h"

#include <cstdio>

using namespace hotg;
using namespace hotg::core;
using namespace hotg::dse;
using namespace hotg::interp;

namespace {

/// Your proprietary checksum — deterministic, opaque, non-invertible as
/// far as the symbolic engine is concerned (Theorem 3's requirements).
int64_t checksum(int64_t SessionId, int64_t Nonce) {
  uint64_t H = static_cast<uint64_t>(SessionId) * 0x9e3779b97f4a7c15ULL;
  H ^= static_cast<uint64_t>(Nonce) + (H << 6) + (H >> 2);
  return static_cast<int64_t>(H % 65536);
}

} // namespace

int main() {
  // A tiny "protocol handler": the privileged path requires the caller to
  // present the checksum of its own (session, nonce) pair, then a magic
  // command byte — a miniature of the parser/lexer pattern from the paper.
  const char *Source = R"(
extern checksum(int, int) -> int;
fun handle(session: int, nonce: int, token: int, cmd: int) -> int {
  if (token != checksum(session, nonce)) {
    return -1; // rejected
  }
  if (cmd == 77) {
    error("privileged command executed");
  }
  return 0; // accepted, unprivileged
}
)";

  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "compile error:\n%s", Diags.render().c_str());
    return 1;
  }

  NativeRegistry Natives;
  Natives.registerFunc("checksum", 2, [](std::span<const int64_t> Args) {
    return checksum(Args[0], Args[1]);
  });

  SearchOptions Options;
  Options.Policy = ConcretizationPolicy::HigherOrder;
  Options.MaxTests = 32;
  TestInput Init;
  Init.Cells = {1001, 7, 0, 0}; // An unauthenticated probe.
  Options.InitialInput = Init;

  DirectedSearch Search(*Prog, Natives, "handle", Options);
  SearchResult Result = Search.run();

  std::printf("tests run: %u, IOF samples: %zu\n", Result.testsRun(),
              Search.samples().size());
  for (size_t I = 0; I != Result.Tests.size(); ++I)
    std::printf("  #%02zu handle%s -> %s\n", I + 1,
                Result.Tests[I].Input.toString().c_str(),
                runStatusName(Result.Tests[I].Status));

  if (!Result.Bugs.empty()) {
    const BugRecord &Bug = Result.Bugs.front();
    std::printf("\nbug found: \"%s\" with input %s\n", Bug.Message.c_str(),
                Bug.Input.toString().c_str());
    std::printf("the generator forged the checksum by *observing* "
                "checksum(%lld, %lld) at runtime — no inversion needed.\n",
                static_cast<long long>(Bug.Input.Cells[0]),
                static_cast<long long>(Bug.Input.Cells[1]));
    return 0;
  }
  std::printf("\nno bug found (unexpected)\n");
  return 1;
}
